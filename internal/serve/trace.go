package serve

import (
	"time"

	"github.com/vmcu-project/vmcu/internal/obs"
)

// Request-lifecycle tracing. When Options.Tracer is set, every accepted
// submission records a connected span tree:
//
//	request                         (root, kind "request")
//	├── submit                      (Submit body: ticket creation)
//	├── queue                       (enqueue → taken by a dispatcher, or shed)
//	├── admit                       (variant selection + ledger reserve)
//	│   └── ledger.reserve
//	├── dispatch                    (admission → executor goroutine running)
//	├── execute                     (the netplan.Run verification)
//	│   └── one span per executed unit (module / split region / seam),
//	│       recorded by netplan with device cycle counters as attributes
//	└── complete                    (ledger release + metrics + resolve)
//	    └── ledger.release
//
// Requests that never reach admission still close their tree: the queue
// span ends with an "outcome" attribute (shed / canceled) and the root
// span ends with the terminal state. Every span-touching path runs under
// Server.mu or in the single goroutine owning the request at that stage,
// so the tracing is race-clean; with a nil tracer every call below is a
// nil-check no-op.

// Tracer metric names exported by the serving layer.
const (
	metricSubmitted       = "vmcu_serve_submitted"
	metricCompleted       = "vmcu_serve_completed"
	metricFailed          = "vmcu_serve_failed"
	metricCanceled        = "vmcu_serve_canceled"
	metricRejectedFull    = "vmcu_serve_rejected_queue_full"
	metricShedDeadline    = "vmcu_serve_shed_deadline"
	metricVariantUpgrades = "vmcu_serve_variant_upgrades"
	metricQueueDepth      = "vmcu_serve_queue_depth"
	metricLatencyMs       = "vmcu_serve_latency_ms"
)

// latencyHistBoundsMs mirrors latencyBuckets for the tracer's histogram.
func latencyHistBoundsMs() []float64 {
	out := make([]float64, len(latencyBuckets))
	for i, b := range latencyBuckets {
		out[i] = float64(b) / float64(time.Millisecond)
	}
	return out
}

// traceSubmit opens the request's root span and the submit stage span.
func (s *Server) traceSubmit(req *request, modelName string) (submit *obs.Span) {
	if s.tr == nil {
		return nil
	}
	req.rootSpan = s.tr.Start("request", obs.KindRequest)
	req.rootSpan.Attr(obs.Str("model", modelName))
	submit = s.tr.StartChild(req.rootSpan, "submit", obs.KindStage)
	return submit
}

// traceEnqueued ends the submit span and opens the queue span. Runs with
// Server.mu held, with the request id assigned.
func (s *Server) traceEnqueued(req *request, submit *obs.Span) {
	if s.tr == nil {
		return
	}
	req.rootSpan.Attr(obs.Int("request_id", int64(req.id)))
	submit.End()
	req.queueSpan = s.tr.StartChild(req.rootSpan, "queue", obs.KindStage)
	s.tr.Gauge(metricQueueDepth).Set(float64(len(s.queue)))
	s.tr.Counter(metricSubmitted).Inc()
}

// traceSubmitRejected closes the tree of a request rejected at submit
// time (queue full / closed): no queue span was ever opened.
func (s *Server) traceSubmitRejected(req *request, submit *obs.Span, reason string) {
	if s.tr == nil {
		return
	}
	submit.Attr(obs.Str("outcome", reason))
	submit.End()
	req.rootSpan.Attr(obs.Str("state", reason))
	req.rootSpan.End()
	if reason == "rejected-queue-full" {
		s.tr.Counter(metricRejectedFull).Inc()
	}
}

// traceAdmit ends the queue span and records the admit stage: variant
// selection plus the ledger reservation. Runs with Server.mu held, in the
// admitting dispatcher.
func (s *Server) traceAdmit(d *device, req *request) {
	if s.tr == nil {
		return
	}
	req.queueSpan.End()
	req.queueSpan = nil
	s.tr.Gauge(metricQueueDepth).Set(float64(len(s.queue)))
	admit := s.tr.StartChild(req.rootSpan, "admit", obs.KindStage)
	admit.SetDevice(d.name)
	admit.Attr(
		obs.Str("variant", req.variant.desc),
		obs.Int("peak_bytes", int64(req.peak)),
		obs.Int("ledger_free_bytes", int64(d.ledger.Free())),
	)
	res := s.tr.StartChild(admit, "ledger.reserve", obs.KindStage)
	res.SetDevice(d.name)
	res.Attr(obs.Int("bytes", int64(req.peak)))
	res.End()
	admit.End()
	if req.variant.peak > req.mdl.minPeak {
		s.tr.Counter(metricVariantUpgrades).Inc()
	}
	req.dispatchSpan = s.tr.StartChild(req.rootSpan, "dispatch", obs.KindStage)
	req.dispatchSpan.SetDevice(d.name)
}

// traceQueueExit closes the tree of a request that left the queue without
// admission (deadline shed or cancel). Runs with Server.mu held.
func (s *Server) traceQueueExit(req *request, outcome string) {
	if s.tr == nil {
		return
	}
	req.queueSpan.Attr(obs.Str("outcome", outcome))
	req.queueSpan.End()
	req.queueSpan = nil
	s.tr.Gauge(metricQueueDepth).Set(float64(len(s.queue)))
	req.rootSpan.Attr(obs.Str("state", outcome))
	req.rootSpan.End()
	switch outcome {
	case "shed-deadline":
		s.tr.Counter(metricShedDeadline).Inc()
	case "canceled":
		s.tr.Counter(metricCanceled).Inc()
	}
}

// traceExecuteStart ends the dispatch span and opens the execute span in
// the executor goroutine.
func (s *Server) traceExecuteStart(d *device, req *request) *obs.Span {
	if s.tr == nil {
		return nil
	}
	req.dispatchSpan.End()
	req.dispatchSpan = nil
	exec := s.tr.StartChild(req.rootSpan, "execute", obs.KindStage)
	exec.SetDevice(d.name)
	exec.Attr(obs.Str("variant", req.variant.desc))
	return exec
}

// traceComplete records the completion stage (ledger release + metrics)
// and closes the root span. Runs in the executor goroutine after the
// request resolved its outcome fields.
func (s *Server) traceComplete(d *device, req *request, freed int, latency time.Duration, err error) {
	if s.tr == nil {
		return
	}
	complete := s.tr.StartChild(req.rootSpan, "complete", obs.KindStage)
	complete.SetDevice(d.name)
	rel := s.tr.StartChild(complete, "ledger.release", obs.KindStage)
	rel.SetDevice(d.name)
	rel.Attr(obs.Int("bytes", int64(freed)))
	rel.End()
	state := "done"
	if err != nil {
		state = "failed"
		s.tr.Counter(metricFailed).Inc()
	} else {
		s.tr.Counter(metricCompleted).Inc()
	}
	complete.Attr(obs.Str("state", state))
	complete.End()
	req.rootSpan.Attr(obs.Str("state", state))
	req.rootSpan.SetDevice(d.name)
	req.rootSpan.End()
	s.tr.Histogram(metricLatencyMs, latencyHistBoundsMs()).
		Observe(float64(latency) / float64(time.Millisecond))
}
