package serve

import (
	"time"

	"github.com/vmcu-project/vmcu/internal/obs"
)

// Request-lifecycle tracing. When Options.Tracer is set, every accepted
// submission records a connected span tree:
//
//	request                         (root, kind "request")
//	├── submit                      (Submit body: ticket creation)
//	├── queue                       (enqueue → taken by a dispatcher, or shed)
//	├── admit                       (variant selection + ledger reserve)
//	│   └── ledger.reserve
//	├── dispatch                    (admission → executor goroutine running)
//	├── execute                     (the netplan.Run verification)
//	│   └── one span per executed unit (module / split region / seam),
//	│       recorded by netplan with device cycle counters as attributes
//	└── complete                    (ledger release + metrics + resolve)
//	    └── ledger.release
//
// A request displaced by a device crash grows a second queue span under
// the same root (the requeue), then continues through admit/dispatch/
// execute again on the surviving device. Requests that never reach
// admission still close their tree: the queue span ends with an
// "outcome" attribute (shed / canceled / evacuated) and the root span
// ends with the terminal state — including submit-time rejections, whose
// requests now resolve instead of leaving orphaned open roots. Every
// span-touching path runs under the home shard's lock or in the single
// goroutine owning the request at that stage, so the tracing is
// race-clean; with a nil tracer every call below is a nil-check no-op.
//
// Lifecycle spans do not hit the tracer as they end: several stages end
// spans while holding the shard lock on the admission hot path, so each
// End is buffered into req.spanBuf (a plain slice append) and the whole
// tree is flushed in one RecordTree call at the terminal point. Only the
// executor's per-unit spans (emitted by netplan mid-execute) go through
// the tracer directly; the flight recorder merges them back into the
// request's tree by trace ID at completion.
//
// Every terminal path additionally completes the request's trace in the
// tracer's flight recorder (no-op unless EnableFlight was called): a
// non-empty reason retains the whole span tree as an exemplar. The
// retention predicate — what counts as "interesting" — is:
//
//	error        execution failed or verification mismatched
//	deadline     shed at the admission deadline
//	queue-full   rejected at submit because every eligible queue was full
//	no-device    rejected at submit because no usable pool fits
//	device-lost  stranded by churn (crash with no surviving absorber)
//	degraded     admitted in degraded mode (smallest-peak variant)
//	budget-miss  served, but the variant's estimated latency broke the budget
//	p99-outlier  served fine but slower than the live windowed p99
//
// Clean completions (and cancels, and shutdown-time rejections) return
// an empty reason: their buffered spans are discarded, which is what
// bounds the recorder at 137k RPS.

// flightP99MinCount is the minimum trailing-window completion count
// before the p99-outlier retention predicate applies — below it the
// live p99 is noise and every early request would be "an outlier".
const flightP99MinCount = 100

// latencyHistBoundsMs mirrors latencyBuckets for the tracer's histogram.
func latencyHistBoundsMs() []float64 {
	out := make([]float64, len(latencyBuckets))
	for i, b := range latencyBuckets {
		out[i] = float64(b) / float64(time.Millisecond)
	}
	return out
}

// flightDone flushes the request's buffered span tree into the tracer
// and completes its trace in the flight recorder: an empty reason
// discards the tree from the recorder (the spans still land in the span
// ring), a non-empty one retains it. This is the ONLY point the tracing
// of a request takes tracer locks — every earlier stage just appended to
// req.spanBuf. Nil-safe throughout (nil tracer → no-op).
func (s *Server) flightDone(req *request, reason string) {
	s.tr.RecordTree(&req.spanBuf, req.rootSpan.TraceID(), reason)
}

// traceSubmit opens the request's root span and the submit stage span.
func (s *Server) traceSubmit(req *request, modelName string) (submit *obs.Span) {
	if s.tr == nil {
		return nil
	}
	// Reserve only the rejection-path footprint here (root + submit);
	// the full lifecycle reservation waits until the queue accepts the
	// request — most submissions in an overload burst bounce at submit
	// and would waste a 12-slot buffer.
	req.spanBuf.Reserve(2)
	req.rootSpan = s.tr.Start("request", obs.KindRequest)
	req.rootSpan.Attr(obs.Str("model", modelName))
	submit = s.tr.StartChild(req.rootSpan, "submit", obs.KindStage)
	return submit
}

// traceEnqueued ends the submit span and opens the queue span. Runs with
// shard.mu held, with the request id assigned.
func (s *Server) traceEnqueued(sh *shard, req *request, submit *obs.Span) {
	if s.tr == nil {
		return
	}
	req.rootSpan.Attr(obs.Int("request_id", int64(req.id)))
	req.spanBuf.Reserve(10)
	submit.EndTo(&req.spanBuf)
	req.queueSpan = s.tr.StartChild(req.rootSpan, "queue", obs.KindStage)
	req.queueSpan.Attr(obs.Str("shard", sh.key))
	sh.submittedCounterLocked(req.mdl).Inc()
}

// traceSubmitRejected closes the tree of a request rejected at submit
// time (queue full / closed / no usable device): no queue span was ever
// opened, and the request resolves to a terminal state right after.
func (s *Server) traceSubmitRejected(req *request, submit *obs.Span, reason string) {
	if s.tr == nil {
		return
	}
	submit.Attr(obs.Str("outcome", reason))
	submit.EndTo(&req.spanBuf)
	req.rootSpan.Attr(obs.Str("state", reason))
	req.rootSpan.EndTo(&req.spanBuf)
	// Submit-time rejections never reached a shard; the shard label is
	// empty by design, not unknown.
	s.ins.outcomes.With(req.mdl.name, "", reason).Inc()
	switch reason {
	case outcomeQueueFull:
		s.flightDone(req, "queue-full")
	case outcomeNoDevice:
		s.flightDone(req, "no-device")
	default:
		s.flightDone(req, "")
	}
}

// traceAdmit ends the queue span and records the admit stage: variant
// selection plus the ledger reservation. Runs with shard.mu held, in the
// admitting dispatcher.
func (s *Server) traceAdmit(sh *shard, d *device, req *request, degraded bool) {
	if s.tr == nil {
		return
	}
	req.queueSpan.EndTo(&req.spanBuf)
	req.queueSpan = nil
	admit := s.tr.StartChild(req.rootSpan, "admit", obs.KindStage)
	admit.SetDevice(d.name)
	admit.Attr(
		obs.Str("variant", req.variant.desc),
		obs.Int("peak_bytes", int64(req.peak)),
		obs.Int("ledger_free_bytes", int64(d.ledger.Free())),
	)
	if degraded {
		admit.Attr(obs.Str("mode", "degraded"))
		sh.hDegradedAdmissions.Inc()
	}
	res := s.tr.StartChild(admit, "ledger.reserve", obs.KindStage)
	res.SetDevice(d.name)
	res.Attr(obs.Int("bytes", int64(req.peak)))
	res.EndTo(&req.spanBuf)
	admit.EndTo(&req.spanBuf)
	if req.variant.peak > req.mdl.minPeak {
		sh.hVariantUpgrades.Inc()
	}
	req.dispatchSpan = s.tr.StartChild(req.rootSpan, "dispatch", obs.KindStage)
	req.dispatchSpan.SetDevice(d.name)
}

// traceQueueExit closes the tree of a request that left the queue without
// admission (deadline shed or cancel). Runs with shard.mu held.
func (s *Server) traceQueueExit(sh *shard, req *request, outcome string) {
	if s.tr == nil {
		return
	}
	req.queueSpan.Attr(obs.Str("outcome", outcome))
	req.queueSpan.EndTo(&req.spanBuf)
	req.queueSpan = nil
	req.rootSpan.Attr(obs.Str("state", outcome))
	req.rootSpan.EndTo(&req.spanBuf)
	s.ins.outcomes.With(req.mdl.name, sh.key, outcome).Inc()
	s.flightDone(req, "")
}

// traceShedLocked ends a deadline-shed request's queue span (an EndTo is
// a buffered append — no tracer locks) and bumps its outcome counter.
// Runs with shard.mu held, in the shed scan that removed the request
// from the queue; the expensive rest of the tree close happens off-lock
// in traceShedFinish.
func (s *Server) traceShedLocked(sh *shard, req *request) {
	if s.tr == nil {
		return
	}
	req.queueSpan.Attr(obs.Str("outcome", outcomeShedDeadline))
	req.queueSpan.EndTo(&req.spanBuf)
	req.queueSpan = nil
	sh.shedCounterLocked(req.mdl).Inc()
}

// traceShedFinish closes the rest of a deadline-shed request's tree.
// Unlike the other queue exits it runs WITHOUT the shard lock: the shed
// already removed the request from the queue and ended its queue span
// under the lock (traceShedLocked), making the shedding dispatcher the
// request's sole owner, so the root close and the flight flush happen
// off the admission path.
func (s *Server) traceShedFinish(req *request) {
	if s.tr == nil {
		return
	}
	req.rootSpan.Attr(obs.Str("state", outcomeShedDeadline))
	req.rootSpan.EndTo(&req.spanBuf)
	s.flightDone(req, "deadline")
}

// traceEvacuated ends the queue span of a request evacuated from a
// shrunken shard (device removal/crash left no pool that could hold it)
// without closing the root: the request is about to be re-routed or
// resolved with ErrDeviceLost. Runs with shard.mu held.
func (s *Server) traceEvacuated(sh *shard, req *request) {
	if s.tr == nil {
		return
	}
	req.queueSpan.Attr(obs.Str("outcome", "evacuated"))
	req.queueSpan.EndTo(&req.spanBuf)
	req.queueSpan = nil
}

// traceRequeue opens a fresh queue span for a churn-displaced request
// landing on a surviving shard — the same root grows a second queue/
// admit/dispatch/execute run. Runs with shard.mu held (the receiving
// shard's).
func (s *Server) traceRequeue(sh *shard, req *request, from string) {
	if s.tr == nil {
		return
	}
	req.queueSpan = s.tr.StartChild(req.rootSpan, "queue", obs.KindStage)
	req.queueSpan.Attr(
		obs.Str("shard", sh.key),
		obs.Str("requeued_from", from),
	)
	sh.hRequeued.Inc()
}

// traceDeviceLost closes the tree of a request stranded by churn: its
// device crashed mid-request (or every candidate pool left) and no
// surviving device absorbed it. Runs in the goroutine owning the request
// (executor unwind or the churn call itself); the queue span, if any, was
// already ended by traceEvacuated.
func (s *Server) traceDeviceLost(req *request, devName string) {
	if s.tr == nil {
		return
	}
	req.rootSpan.Attr(
		obs.Str("state", outcomeDeviceLost),
		obs.Str("device", devName),
	)
	req.rootSpan.EndTo(&req.spanBuf)
	s.ins.outcomes.With(req.mdl.name, "", outcomeDeviceLost).Inc()
	s.flightDone(req, "device-lost")
}

// traceExecuteStart ends the dispatch span and opens the execute span in
// the executor goroutine.
func (s *Server) traceExecuteStart(d *device, req *request) *obs.Span {
	if s.tr == nil {
		return nil
	}
	req.dispatchSpan.EndTo(&req.spanBuf)
	req.dispatchSpan = nil
	exec := s.tr.StartChild(req.rootSpan, "execute", obs.KindStage)
	exec.SetDevice(d.name)
	exec.Attr(obs.Str("variant", req.variant.desc))
	return exec
}

// traceComplete records the completion stage (ledger release + metrics),
// closes the root span, and decides the flight-retention outcome. Runs
// in the executor goroutine after the request resolved its outcome
// fields.
func (s *Server) traceComplete(d *device, req *request, freed int, latency time.Duration, err error) {
	if s.tr == nil {
		return
	}
	complete := s.tr.StartChild(req.rootSpan, "complete", obs.KindStage)
	complete.SetDevice(d.name)
	rel := s.tr.StartChild(complete, "ledger.release", obs.KindStage)
	rel.SetDevice(d.name)
	rel.Attr(obs.Int("bytes", int64(freed)))
	rel.EndTo(&req.spanBuf)
	state := outcomeDone
	if err != nil {
		state = outcomeFailed
	}
	complete.Attr(obs.Str("state", state))
	complete.EndTo(&req.spanBuf)
	req.rootSpan.Attr(obs.Str("state", state))
	req.rootSpan.SetDevice(d.name)
	req.rootSpan.EndTo(&req.spanBuf)
	s.ins.outcomes.With(req.mdl.name, d.sh.key, state).Inc()

	latMs := float64(latency) / float64(time.Millisecond)
	req.mdl.hLatency.Observe(latMs)
	switch {
	case err != nil:
		s.flightDone(req, "error")
	case req.degradedAdmit:
		s.flightDone(req, "degraded")
	case req.latencyBudget > 0 && !req.metBudget:
		s.flightDone(req, "budget-miss")
	default:
		reason := ""
		if p99, n := req.mdl.hLatency.LiveQuantile(0.99); n >= flightP99MinCount && latMs > p99 {
			reason = "p99-outlier"
		}
		s.flightDone(req, reason)
	}
}
