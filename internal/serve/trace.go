package serve

import (
	"strings"
	"time"

	"github.com/vmcu-project/vmcu/internal/obs"
)

// Request-lifecycle tracing. When Options.Tracer is set, every accepted
// submission records a connected span tree:
//
//	request                         (root, kind "request")
//	├── submit                      (Submit body: ticket creation)
//	├── queue                       (enqueue → taken by a dispatcher, or shed)
//	├── admit                       (variant selection + ledger reserve)
//	│   └── ledger.reserve
//	├── dispatch                    (admission → executor goroutine running)
//	├── execute                     (the netplan.Run verification)
//	│   └── one span per executed unit (module / split region / seam),
//	│       recorded by netplan with device cycle counters as attributes
//	└── complete                    (ledger release + metrics + resolve)
//	    └── ledger.release
//
// A request displaced by a device crash grows a second queue span under
// the same root (the requeue), then continues through admit/dispatch/
// execute again on the surviving device. Requests that never reach
// admission still close their tree: the queue span ends with an
// "outcome" attribute (shed / canceled / evacuated) and the root span
// ends with the terminal state — including submit-time rejections, whose
// requests now resolve instead of leaving orphaned open roots. Every
// span-touching path runs under the home shard's lock or in the single
// goroutine owning the request at that stage, so the tracing is
// race-clean; with a nil tracer every call below is a nil-check no-op.

// Tracer metric names exported by the serving layer. The queue-depth
// gauge is per shard: metricQueueDepth + "_" + the sanitized shard key.
const (
	metricSubmitted       = "vmcu_serve_submitted"
	metricCompleted       = "vmcu_serve_completed"
	metricFailed          = "vmcu_serve_failed"
	metricCanceled        = "vmcu_serve_canceled"
	metricRejectedFull    = "vmcu_serve_rejected_queue_full"
	metricShedDeadline    = "vmcu_serve_shed_deadline"
	metricVariantUpgrades = "vmcu_serve_variant_upgrades"
	metricQueueDepth      = "vmcu_serve_queue_depth"
	metricLatencyMs       = "vmcu_serve_latency_ms"
	metricDegraded        = "vmcu_serve_degraded_admissions"
	metricRequeued        = "vmcu_serve_requeued"
	metricDeviceLost      = "vmcu_serve_device_lost"
)

// gaugeName builds a shard's queue-depth gauge name, sanitizing the
// shard key (a profile name like "STM32-F411RE (Cortex-M4)") to metric
// charset.
func gaugeName(key string) string {
	var b strings.Builder
	b.WriteString(metricQueueDepth)
	b.WriteByte('_')
	for _, r := range key {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// latencyHistBoundsMs mirrors latencyBuckets for the tracer's histogram.
func latencyHistBoundsMs() []float64 {
	out := make([]float64, len(latencyBuckets))
	for i, b := range latencyBuckets {
		out[i] = float64(b) / float64(time.Millisecond)
	}
	return out
}

// traceQueueDepth refreshes a shard's queue-depth gauge. Runs with
// shard.mu held.
func (s *Server) traceQueueDepth(sh *shard) {
	if s.tr == nil {
		return
	}
	s.tr.Gauge(gaugeName(sh.key)).Set(float64(sh.q.count))
}

// traceSubmit opens the request's root span and the submit stage span.
func (s *Server) traceSubmit(req *request, modelName string) (submit *obs.Span) {
	if s.tr == nil {
		return nil
	}
	req.rootSpan = s.tr.Start("request", obs.KindRequest)
	req.rootSpan.Attr(obs.Str("model", modelName))
	submit = s.tr.StartChild(req.rootSpan, "submit", obs.KindStage)
	return submit
}

// traceEnqueued ends the submit span and opens the queue span. Runs with
// shard.mu held, with the request id assigned.
func (s *Server) traceEnqueued(sh *shard, req *request, submit *obs.Span) {
	if s.tr == nil {
		return
	}
	req.rootSpan.Attr(obs.Int("request_id", int64(req.id)))
	submit.End()
	req.queueSpan = s.tr.StartChild(req.rootSpan, "queue", obs.KindStage)
	req.queueSpan.Attr(obs.Str("shard", sh.key))
	s.tr.Counter(metricSubmitted).Inc()
}

// traceSubmitRejected closes the tree of a request rejected at submit
// time (queue full / closed / no usable device): no queue span was ever
// opened, and the request resolves to a terminal state right after.
func (s *Server) traceSubmitRejected(req *request, submit *obs.Span, reason string) {
	if s.tr == nil {
		return
	}
	submit.Attr(obs.Str("outcome", reason))
	submit.End()
	req.rootSpan.Attr(obs.Str("state", reason))
	req.rootSpan.End()
	if reason == "rejected-queue-full" {
		s.tr.Counter(metricRejectedFull).Inc()
	}
}

// traceAdmit ends the queue span and records the admit stage: variant
// selection plus the ledger reservation. Runs with shard.mu held, in the
// admitting dispatcher.
func (s *Server) traceAdmit(sh *shard, d *device, req *request, degraded bool) {
	if s.tr == nil {
		return
	}
	req.queueSpan.End()
	req.queueSpan = nil
	s.traceQueueDepth(sh)
	admit := s.tr.StartChild(req.rootSpan, "admit", obs.KindStage)
	admit.SetDevice(d.name)
	admit.Attr(
		obs.Str("variant", req.variant.desc),
		obs.Int("peak_bytes", int64(req.peak)),
		obs.Int("ledger_free_bytes", int64(d.ledger.Free())),
	)
	if degraded {
		admit.Attr(obs.Str("mode", "degraded"))
		s.tr.Counter(metricDegraded).Inc()
	}
	res := s.tr.StartChild(admit, "ledger.reserve", obs.KindStage)
	res.SetDevice(d.name)
	res.Attr(obs.Int("bytes", int64(req.peak)))
	res.End()
	admit.End()
	if req.variant.peak > req.mdl.minPeak {
		s.tr.Counter(metricVariantUpgrades).Inc()
	}
	req.dispatchSpan = s.tr.StartChild(req.rootSpan, "dispatch", obs.KindStage)
	req.dispatchSpan.SetDevice(d.name)
}

// traceQueueExit closes the tree of a request that left the queue without
// admission (deadline shed or cancel). Runs with shard.mu held.
func (s *Server) traceQueueExit(sh *shard, req *request, outcome string) {
	if s.tr == nil {
		return
	}
	req.queueSpan.Attr(obs.Str("outcome", outcome))
	req.queueSpan.End()
	req.queueSpan = nil
	s.traceQueueDepth(sh)
	req.rootSpan.Attr(obs.Str("state", outcome))
	req.rootSpan.End()
	switch outcome {
	case "shed-deadline":
		s.tr.Counter(metricShedDeadline).Inc()
	case "canceled":
		s.tr.Counter(metricCanceled).Inc()
	}
}

// traceEvacuated ends the queue span of a request evacuated from a
// shrunken shard (device removal/crash left no pool that could hold it)
// without closing the root: the request is about to be re-routed or
// resolved with ErrDeviceLost. Runs with shard.mu held.
func (s *Server) traceEvacuated(sh *shard, req *request) {
	if s.tr == nil {
		return
	}
	req.queueSpan.Attr(obs.Str("outcome", "evacuated"))
	req.queueSpan.End()
	req.queueSpan = nil
	s.traceQueueDepth(sh)
}

// traceRequeue opens a fresh queue span for a churn-displaced request
// landing on a surviving shard — the same root grows a second queue/
// admit/dispatch/execute run. Runs with shard.mu held (the receiving
// shard's).
func (s *Server) traceRequeue(sh *shard, req *request, from string) {
	if s.tr == nil {
		return
	}
	req.queueSpan = s.tr.StartChild(req.rootSpan, "queue", obs.KindStage)
	req.queueSpan.Attr(
		obs.Str("shard", sh.key),
		obs.Str("requeued_from", from),
	)
	s.tr.Counter(metricRequeued).Inc()
}

// traceDeviceLost closes the tree of a request stranded by churn: its
// device crashed mid-request (or every candidate pool left) and no
// surviving device absorbed it. Runs in the goroutine owning the request
// (executor unwind or the churn call itself); the queue span, if any, was
// already ended by traceEvacuated.
func (s *Server) traceDeviceLost(req *request, devName string) {
	if s.tr == nil {
		return
	}
	req.rootSpan.Attr(
		obs.Str("state", "device-lost"),
		obs.Str("device", devName),
	)
	req.rootSpan.End()
	s.tr.Counter(metricDeviceLost).Inc()
}

// traceExecuteStart ends the dispatch span and opens the execute span in
// the executor goroutine.
func (s *Server) traceExecuteStart(d *device, req *request) *obs.Span {
	if s.tr == nil {
		return nil
	}
	req.dispatchSpan.End()
	req.dispatchSpan = nil
	exec := s.tr.StartChild(req.rootSpan, "execute", obs.KindStage)
	exec.SetDevice(d.name)
	exec.Attr(obs.Str("variant", req.variant.desc))
	return exec
}

// traceComplete records the completion stage (ledger release + metrics)
// and closes the root span. Runs in the executor goroutine after the
// request resolved its outcome fields.
func (s *Server) traceComplete(d *device, req *request, freed int, latency time.Duration, err error) {
	if s.tr == nil {
		return
	}
	complete := s.tr.StartChild(req.rootSpan, "complete", obs.KindStage)
	complete.SetDevice(d.name)
	rel := s.tr.StartChild(complete, "ledger.release", obs.KindStage)
	rel.SetDevice(d.name)
	rel.Attr(obs.Int("bytes", int64(freed)))
	rel.End()
	state := "done"
	if err != nil {
		state = "failed"
		s.tr.Counter(metricFailed).Inc()
	} else {
		s.tr.Counter(metricCompleted).Inc()
	}
	complete.Attr(obs.Str("state", state))
	complete.End()
	req.rootSpan.Attr(obs.Str("state", state))
	req.rootSpan.SetDevice(d.name)
	req.rootSpan.End()
	s.tr.Histogram(metricLatencyMs, latencyHistBoundsMs()).
		Observe(float64(latency) / float64(time.Millisecond))
}
