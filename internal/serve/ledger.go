package serve

import (
	"fmt"
	"sync"
)

// Ledger tracks byte-exact reservations against one device's SRAM pool.
// A request is admitted onto the device only by reserving its whole-plan
// peak (netplan.NetworkPlan.PeakBytes) here first; the reservation is
// held for the request's entire residency and released exactly once when
// it leaves. Because every kernel of a scheduled plan stays inside its
// plan's peak (the planner's lifetime-aware bound, verified bit-exactly
// by the executor's shadow state), co-resident requests whose reserved
// peaks sum to at most the pool capacity can never overlap in SRAM —
// the ledger is the admission-control invariant of the whole subsystem:
//
//	sum(reserved peaks) <= capacity, at every instant.
//
// TryReserve refuses any reservation that would break it, so over-commit
// is impossible by construction; the property tests fuzz this under
// concurrent reserve/release and -race, and vmcu-lint's ledgerwrite
// analyzer (lint:ledger) keeps the byte accounting writable only from
// Ledger's own methods.
type Ledger struct {
	mu       sync.Mutex
	capacity int            // pool size; immutable after NewLedger
	used     int            // bytes currently reserved; guarded by Ledger.mu
	peakUsed int            // reservation high-water mark; guarded by Ledger.mu
	held     map[uint64]int // request id -> reserved bytes; guarded by Ledger.mu
	admitted uint64         // lifetime admissions; guarded by Ledger.mu
	refused  uint64         // lifetime refusals; guarded by Ledger.mu
}

// NewLedger returns a ledger over a pool of capacity bytes.
func NewLedger(capacity int) (*Ledger, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("serve: ledger capacity must be positive, got %d", capacity)
	}
	return &Ledger{capacity: capacity, held: make(map[uint64]int)}, nil
}

// TryReserve reserves bytes for request id, failing (without side effects
// beyond the refusal counter) when the reservation would exceed the pool
// or the id already holds one. bytes must be positive: a zero-byte
// admission would make "resident" unobservable in the ledger.
func (l *Ledger) TryReserve(id uint64, bytes int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if bytes <= 0 || bytes > l.capacity-l.used {
		l.refused++
		return false
	}
	if _, dup := l.held[id]; dup {
		l.refused++
		return false
	}
	l.held[id] = bytes
	l.used += bytes
	if l.used > l.peakUsed {
		l.peakUsed = l.used
	}
	l.admitted++
	return true
}

// Release frees request id's reservation, returning the freed byte count,
// or -1 when the id holds none (a double release is reported, not
// absorbed, so accounting bugs surface in tests).
func (l *Ledger) Release(id uint64) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	bytes, ok := l.held[id]
	if !ok {
		return -1
	}
	delete(l.held, id)
	l.used -= bytes
	return bytes
}

// Abandon force-releases every reservation at once — the device-crash
// path. It returns the total bytes and reservation count released, so a
// crash's pool accounting is provable at the instant of the crash rather
// than when the doomed executions unwind (their later Release calls
// return -1, absorbed by the dead-device path).
func (l *Ledger) Abandon() (bytes, count int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	bytes, count = l.used, len(l.held)
	l.held = make(map[uint64]int)
	l.used = 0
	return bytes, count
}

// Capacity returns the pool size in bytes.
func (l *Ledger) Capacity() int { return l.capacity }

// Used returns the bytes currently reserved.
func (l *Ledger) Used() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.used
}

// Free returns the bytes currently available for admission.
func (l *Ledger) Free() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.capacity - l.used
}

// PeakUsed returns the high-water mark of reserved bytes — by the
// TryReserve invariant, always at most Capacity.
func (l *Ledger) PeakUsed() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.peakUsed
}

// Counters returns the lifetime admission and refusal counts.
func (l *Ledger) Counters() (admitted, refused uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.admitted, l.refused
}

// Residents returns the number of reservations currently held.
func (l *Ledger) Residents() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.held)
}
