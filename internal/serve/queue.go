package serve

import "time"

// The admission queue is a per-shard strict-priority structure built from
// FIFO rings indexed by reservation peak:
//
//	prioQueue
//	├── prioClass (priority 9)
//	│   ├── peakBucket (peak 33 KB) — FIFO ring of requests
//	│   └── peakBucket (peak 66 KB) — FIFO ring of requests
//	└── prioClass (priority 0)
//	    └── peakBucket (peak 33 KB) — FIFO ring of requests
//
// A queued request's peak is its model's minimal variant peak, so the
// number of buckets is bounded by (priorities in use) × (registered
// models), not by the queue length: selection — the highest-priority,
// earliest-enqueued request whose peak fits the stealing device's free
// bytes — inspects only the bucket heads, replacing the previous
// O(queue) scan over a flat slice with an O(classes × buckets) walk.
//
// Every removal path (pop, cancel, shed) clears the vacated ring slot.
// This is the fix for the retention bug family: the old slice queue's
// removal idioms (append(q[:i], q[i+1:]...) and kept := q[:0] filtering)
// left stale *request pointers in the backing array's tail, pinning
// resolved requests — tickets, spans, results — for the server's
// lifetime. The rings never hold a pointer past the request's removal;
// TestQueueRemovalReleasesRequests pins that with finalizer accounting.
//
// All methods run with the owning shard's mutex (shard.mu) held.

// ring is a growable circular FIFO of requests. head and tail are
// absolute positions (buf[pos%len(buf)]), so a queued request's position
// (request.qpos) stays valid across growth and O(1) targeted removal
// works without shifting elements: removal just clears the slot, leaving
// a hole the next pop skips.
type ring struct {
	buf        []*request
	head, tail int64 // absolute positions; live entries sit in [head, tail)
	live       int   // non-hole entries in [head, tail)
}

// push appends req at the tail, growing the buffer when full.
func (r *ring) push(req *request) {
	if int(r.tail-r.head) == len(r.buf) {
		r.grow()
	}
	req.qpos = r.tail
	r.buf[r.tail%int64(len(r.buf))] = req
	r.tail++
	r.live++
}

// grow doubles the buffer, relocating entries to the same absolute
// positions modulo the new length (positions never collide because the
// window tail-head fits the old length).
func (r *ring) grow() {
	n := 2 * len(r.buf)
	if n == 0 {
		n = 8
	}
	nb := make([]*request, n)
	for p := r.head; p < r.tail; p++ {
		nb[p%int64(n)] = r.buf[p%int64(len(r.buf))]
	}
	r.buf = nb
}

// peek returns the oldest live request without removing it, or nil.
func (r *ring) peek() *request {
	r.skipHoles()
	if r.head == r.tail {
		return nil
	}
	return r.buf[r.head%int64(len(r.buf))]
}

// pop removes and returns the oldest live request, clearing its slot.
func (r *ring) pop() *request {
	req := r.peek()
	if req == nil {
		return nil
	}
	r.buf[r.head%int64(len(r.buf))] = nil
	r.head++
	r.live--
	return req
}

// remove clears req's slot if req is still queued here, reporting whether
// it won (a concurrent pop may have taken it first).
func (r *ring) remove(req *request) bool {
	if req.qpos < r.head || req.qpos >= r.tail {
		return false
	}
	i := req.qpos % int64(len(r.buf))
	if r.buf[i] != req {
		return false
	}
	r.buf[i] = nil
	r.live--
	r.skipHoles()
	return true
}

// skipHoles advances head past cleared slots so peek is O(1) amortized.
func (r *ring) skipHoles() {
	for r.head < r.tail && r.buf[r.head%int64(len(r.buf))] == nil {
		r.head++
	}
}

// peakBucket is one FIFO ring of queued requests sharing a reservation
// peak within a priority class.
type peakBucket struct {
	peak int
	ring ring
}

// prioClass groups the buckets of one priority, ascending by peak so a
// fit scan can stop at the first bucket past the free bytes.
type prioClass struct {
	priority int
	buckets  []*peakBucket
}

// prioQueue is one shard's admission queue. All methods run with
// shard.mu held.
type prioQueue struct {
	classes []*prioClass // descending priority
	count   int          // queued requests across all rings

	// deadline bookkeeping lets shed scans early-out: deadlines counts
	// queued requests carrying one, minDeadline is a (possibly stale,
	// never late) lower bound refreshed by each full scan.
	deadlines   int
	minDeadline time.Time
}

// class returns (creating if asked) the priority class for p.
func (q *prioQueue) class(p int, create bool) *prioClass {
	i := 0
	for ; i < len(q.classes); i++ {
		if q.classes[i].priority == p {
			return q.classes[i]
		}
		if q.classes[i].priority < p {
			break
		}
	}
	if !create {
		return nil
	}
	pc := &prioClass{priority: p}
	q.classes = append(q.classes, nil)
	copy(q.classes[i+1:], q.classes[i:])
	q.classes[i] = pc
	return pc
}

// bucket returns (creating if asked) pc's bucket for peak.
func (pc *prioClass) bucket(peak int, create bool) *peakBucket {
	i := 0
	for ; i < len(pc.buckets); i++ {
		if pc.buckets[i].peak == peak {
			return pc.buckets[i]
		}
		if pc.buckets[i].peak > peak {
			break
		}
	}
	if !create {
		return nil
	}
	b := &peakBucket{peak: peak}
	pc.buckets = append(pc.buckets, nil)
	copy(pc.buckets[i+1:], pc.buckets[i:])
	pc.buckets[i] = b
	return b
}

// push enqueues req under its priority and peak.
func (q *prioQueue) push(req *request) {
	q.class(req.priority, true).bucket(req.peak, true).ring.push(req)
	q.count++
	if !req.deadline.IsZero() {
		q.deadlines++
		if q.minDeadline.IsZero() || req.deadline.Before(q.minDeadline) {
			q.minDeadline = req.deadline
		}
	}
}

// take removes and returns the best admissible request for a device with
// free pool bytes: highest priority first, earliest enqueue (by shard
// sequence) within a priority, restricted to buckets whose peak fits —
// a large queued model never head-of-line blocks a small one that could
// run now. Runs with shard.mu held (it reads request FIFO sequences).
func (q *prioQueue) take(free int) *request {
	for ci := 0; ci < len(q.classes); ci++ {
		pc := q.classes[ci]
		var best *peakBucket
		var bestSeq uint64
		for _, b := range pc.buckets {
			if b.peak > free {
				break // ascending peaks: nothing further fits
			}
			r := b.ring.peek()
			if r == nil {
				continue
			}
			if best == nil || r.seq < bestSeq {
				best, bestSeq = b, r.seq
			}
		}
		if best == nil {
			continue
		}
		req := best.ring.pop()
		q.noteRemoved(req)
		q.prune(pc, best, ci)
		return req
	}
	return nil
}

// remove takes a specific queued request out (cancel path), reporting
// whether it was still queued here.
func (q *prioQueue) remove(req *request) bool {
	pc := q.class(req.priority, false)
	if pc == nil {
		return false
	}
	ci := 0
	for ; ci < len(q.classes); ci++ {
		if q.classes[ci] == pc {
			break
		}
	}
	b := pc.bucket(req.peak, false)
	if b == nil || !b.ring.remove(req) {
		return false
	}
	q.noteRemoved(req)
	q.prune(pc, b, ci)
	return true
}

// shed removes every queued request whose admission deadline has been
// reached, calling fn for each. The boundary is inclusive — a request
// whose deadline equals the scan instant is shed now, not given one
// extra dispatch round (!now.Before covers d == now, unlike the former
// now.After(d)).
func (q *prioQueue) shed(now time.Time, fn func(*request)) {
	if q.deadlines == 0 || (!q.minDeadline.IsZero() && now.Before(q.minDeadline)) {
		return
	}
	q.minDeadline = time.Time{}
	for ci := 0; ci < len(q.classes); ci++ {
		pc := q.classes[ci]
		for bi := 0; bi < len(pc.buckets); bi++ {
			b := pc.buckets[bi]
			for p := b.ring.head; p < b.ring.tail; p++ {
				i := p % int64(len(b.ring.buf))
				req := b.ring.buf[i]
				if req == nil || req.deadline.IsZero() {
					continue
				}
				if now.Before(req.deadline) {
					if q.minDeadline.IsZero() || req.deadline.Before(q.minDeadline) {
						q.minDeadline = req.deadline
					}
					continue
				}
				b.ring.buf[i] = nil
				b.ring.live--
				q.noteRemoved(req)
				fn(req)
			}
			b.ring.skipHoles()
			if b.ring.live == 0 {
				pc.buckets = append(pc.buckets[:bi], pc.buckets[bi+1:]...)
				bi--
			}
		}
		if len(pc.buckets) == 0 {
			q.classes = append(q.classes[:ci], q.classes[ci+1:]...)
			ci--
		}
	}
}

// drainOver removes and returns every queued request whose peak exceeds
// limit, oldest first per class. Device churn uses it: when a shard's
// largest usable pool shrinks (drain complete, crash), the requests no
// surviving device could ever admit are evacuated for re-routing instead
// of waiting forever; limit 0 empties the queue (peaks are positive).
func (q *prioQueue) drainOver(limit int) []*request {
	var out []*request
	for ci := 0; ci < len(q.classes); ci++ {
		pc := q.classes[ci]
		for bi := 0; bi < len(pc.buckets); bi++ {
			b := pc.buckets[bi]
			if b.peak <= limit {
				continue
			}
			for {
				req := b.ring.pop()
				if req == nil {
					break
				}
				q.noteRemoved(req)
				out = append(out, req)
			}
			pc.buckets = append(pc.buckets[:bi], pc.buckets[bi+1:]...)
			bi--
		}
		if len(pc.buckets) == 0 {
			q.classes = append(q.classes[:ci], q.classes[ci+1:]...)
			ci--
		}
	}
	return out
}

// noteRemoved updates the counters for one removed request.
func (q *prioQueue) noteRemoved(req *request) {
	q.count--
	if !req.deadline.IsZero() {
		q.deadlines--
	}
}

// prune drops an emptied bucket (and then class) so the structure stays
// bounded by the live (priority, peak) combinations.
func (q *prioQueue) prune(pc *prioClass, b *peakBucket, ci int) {
	if b.ring.live != 0 {
		return
	}
	for bi, bb := range pc.buckets {
		if bb == b {
			pc.buckets = append(pc.buckets[:bi], pc.buckets[bi+1:]...)
			break
		}
	}
	if len(pc.buckets) == 0 {
		q.classes = append(q.classes[:ci], q.classes[ci+1:]...)
	}
}
