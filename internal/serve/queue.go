package serve

import "time"

// The admission queue is a bounded slice in arrival order shared by every
// device dispatcher. Selection is strict priority with FIFO within a
// priority, restricted to requests whose reserved peak fits the stealing
// device's free pool bytes — a large queued model never head-of-line
// blocks a small one that could run now, and a device with a co-residency
// gap fills it with the best fitting request instead of idling.
//
// Both helpers run with Server.mu held.

// takeLocked removes and returns the best admissible request for device d:
// the highest-priority (earliest within a priority) request whose peak
// fits d's free bytes, or nil when d is slot-saturated or nothing fits.
// Runs with Server.mu held.
func (s *Server) takeLocked(d *device) *request {
	if d.active >= d.slots {
		return nil
	}
	free := d.ledger.Free()
	best := -1
	for i, r := range s.queue {
		if r.peak > free {
			continue
		}
		// The scan runs in arrival order, so replacing only on strictly
		// higher priority keeps FIFO within a priority.
		if best == -1 || r.priority > s.queue[best].priority {
			best = i
		}
	}
	if best == -1 {
		return nil
	}
	r := s.queue[best]
	s.queue = append(s.queue[:best], s.queue[best+1:]...)
	return r
}

// shedExpiredLocked removes every queued request whose admission deadline
// has passed, resolving each ticket with ErrDeadline. Runs with Server.mu
// held.
func (s *Server) shedExpiredLocked(now time.Time) {
	kept := s.queue[:0]
	for _, r := range s.queue {
		if !r.deadline.IsZero() && now.After(r.deadline) {
			s.m.shedDeadline++
			s.traceQueueExit(r, "shed-deadline")
			r.resolve(Result{
				Model:     r.mdl.name,
				PeakBytes: r.peak,
				Latency:   now.Sub(r.submitted),
			}, ErrDeadline, StateRejected)
			continue
		}
		kept = append(kept, r)
	}
	s.queue = kept
}
