package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/vmcu-project/vmcu/internal/mcu"
	"github.com/vmcu-project/vmcu/internal/obs"
)

// sampledServer builds a server over one default m4 device with flight
// recording and head sampling at the given rate.
func sampledServer(t *testing.T, rate float64) (*Server, *obs.Tracer) {
	t.Helper()
	tr := obs.New(obs.Options{})
	tr.EnableFlight(obs.FlightOptions{})
	tr.EnableSampling(obs.SamplerOptions{Rate: rate, Seed: 7})
	s, err := NewServer(Options{
		Devices: []DeviceConfig{{Name: "m4", Profile: mcu.CortexM4()}},
		Tracer:  tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Register("tiny", tinyModel(), ModelConfig{}); err != nil {
		t.Fatal(err)
	}
	return s, tr
}

// TestSampledRequestsAreCollected is the pooling leak regression: with
// head sampling on, a completed request must become garbage once its
// ticket is dropped — no recycled span buffer, flight structure, or
// sampler state may pin it. Runs at the pure-unsampled rate, the mixed
// rate, and the full-tracing rate, since each takes a different buffer
// path through flightDone.
func TestSampledRequestsAreCollected(t *testing.T) {
	for _, rate := range []float64{0, 0.5, 1} {
		t.Run(fmt.Sprintf("rate=%v", rate), func(t *testing.T) {
			s, tr := sampledServer(t, rate)
			const n = 48
			var freed atomic.Int32
			for i := 0; i < n; i++ {
				tk, err := s.Submit("tiny", SubmitOptions{Seed: int64(i)})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := tk.Result(); err != nil {
					t.Fatal(err)
				}
				runtime.SetFinalizer(tk.r, func(*request) { freed.Add(1) })
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			deadline := time.Now().Add(5 * time.Second)
			for freed.Load() < n-4 && time.Now().Before(deadline) {
				runtime.GC()
				time.Sleep(time.Millisecond)
			}
			// A register/stack root may keep a stray request alive; the bug
			// class this guards against retains ALL of them.
			if got := freed.Load(); got < n-4 {
				t.Fatalf("only %d of %d finished requests were collected with sampling at %v", got, n, rate)
			}
			// The tracer (with its pooled buffers, span ring, and flight
			// state) must still be live when collection happens, or the test
			// passes vacuously by freeing the whole graph.
			runtime.KeepAlive(tr)
		})
	}
}

// TestAlwaysKeepClassesCapturedAtTinyRate drives the interesting-outcome
// classes — deadline shed, queue-full rejection, device loss — through a
// server sampling heads at 0.1%, and checks every instance is counted
// and each class leaves a flight exemplar: head sampling must never cost
// visibility into failures.
func TestAlwaysKeepClassesCapturedAtTinyRate(t *testing.T) {
	tr := obs.New(obs.Options{})
	tr.EnableFlight(obs.FlightOptions{})
	tr.EnableSampling(obs.SamplerOptions{Rate: 0.001, Seed: 7})
	peak := peakOf(t, tinyModel())
	s, err := NewServer(Options{
		Devices:  []DeviceConfig{{Name: "m4", Profile: mcu.CortexM4(), PoolBytes: peak, Slots: 1}},
		QueueCap: 1,
		Tracer:   tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Register("tiny", tinyModel(), ModelConfig{}); err != nil {
		t.Fatal(err)
	}

	// Occupy the only slot so later submissions queue.
	tk1, err := s.Submit("tiny", SubmitOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitResident(t, tk1)

	// One deadline shed: already expired, the next dispatcher scan drops it.
	tkShed, err := s.Submit("tiny", SubmitOptions{Seed: 2, Deadline: time.Now().Add(-time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tkShed.Result(); !errors.Is(err, ErrDeadline) {
		t.Fatalf("shed request resolved with %v, want ErrDeadline", err)
	}

	// Fill the queue, then bounce a burst off it.
	tkQueued, err := s.Submit("tiny", SubmitOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	const rejected = 5
	for i := 0; i < rejected; i++ {
		if _, err := s.Submit("tiny", SubmitOptions{Seed: int64(10 + i)}); !errors.Is(err, ErrQueueFull) {
			t.Fatalf("overflow submit %d: %v, want ErrQueueFull", i, err)
		}
	}
	if !tkQueued.Cancel() {
		t.Fatal("cancel lost the race against admission")
	}
	if _, err := tk1.Result(); err != nil {
		t.Fatal(err)
	}

	// Strand one request on a crashing device with no survivor to absorb it.
	tkLost, err := s.Submit("tiny", SubmitOptions{Seed: 20})
	if err != nil {
		t.Fatal(err)
	}
	waitResident(t, tkLost)
	if _, err := s.CrashDevice("m4"); err != nil {
		t.Fatal(err)
	}
	if _, err := tkLost.Result(); !errors.Is(err, ErrDeviceLost) {
		t.Fatalf("stranded request resolved with %v, want ErrDeviceLost", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	st := tr.SamplerStats()
	want := map[string]uint64{"deadline": 1, "queue-full": rejected, "device-lost": 1}
	for class, n := range want {
		if got := st.ClassKept[class]; got < n {
			t.Errorf("ClassKept[%s] = %d, want >= %d — an interesting outcome escaped the sampler", class, got, n)
		}
	}
	reasons := map[string]bool{}
	for _, ft := range tr.FlightSnapshot().Traces {
		reasons[ft.Reason] = true
	}
	for class := range want {
		if !reasons[class] {
			t.Errorf("flight ring holds no %q exemplar at 0.1%% head rate (have %v)", class, reasons)
		}
	}
}

// TestUnsampledCountersOnlyPath pins the rate-0 contract: with every head
// dropped (and tail keeps disabled), metrics still see 100% of traffic
// while zero span trees and zero flight exemplars are produced.
func TestUnsampledCountersOnlyPath(t *testing.T) {
	tr := obs.New(obs.Options{})
	tr.EnableFlight(obs.FlightOptions{})
	tr.EnableSampling(obs.SamplerOptions{Rate: 0, KeepClasses: []string{}})
	s, err := NewServer(Options{
		Devices: []DeviceConfig{{Name: "m4", Profile: mcu.CortexM4()}},
		Tracer:  tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Register("tiny", tinyModel(), ModelConfig{}); err != nil {
		t.Fatal(err)
	}
	const n = 8
	for i := 0; i < n; i++ {
		tk, err := s.Submit("tiny", SubmitOptions{Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.Result(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	snap := tr.Snapshot()
	if got := sumFamily(snap, metricSubmitted, map[string]string{"model": "tiny"}); got != n {
		t.Errorf("submitted counter = %d, want %d — metrics must see all traffic at rate 0", got, n)
	}
	if got := sumFamily(snap, metricOutcomes, map[string]string{"outcome": outcomeDone}); got != n {
		t.Errorf("done outcomes = %d, want %d", got, n)
	}
	if latFam := findFamily(snap, metricLatencyMs); latFam == nil || len(latFam.Series) != 1 ||
		latFam.Series[0].Hist == nil || latFam.Series[0].Hist.Count != n {
		t.Errorf("latency histogram must count all %d completions at rate 0", n)
	}
	if trees := collectTrees(snap); len(trees) != 0 {
		t.Errorf("rate 0 recorded %d span trees, want none", len(trees))
	}
	fs := tr.FlightSnapshot()
	if len(fs.Traces) != 0 || fs.Stats.Retained != 0 {
		t.Errorf("rate 0 retained %d flight traces (%d in ring), want none",
			fs.Stats.Retained, len(fs.Traces))
	}
	if st := tr.SamplerStats(); st.Seen != n || st.Kept != 0 {
		t.Errorf("sampler saw %d kept %d, want %d/0", st.Seen, st.Kept, n)
	}
}

// TestConcurrentSampledServing floods a sampled server from several
// goroutines under the race detector: the mixed sampled/unsampled
// terminal paths (pooled tree flushes interleaved with counters-only
// exits) must be race-clean, and the decision count must match the
// offered load exactly.
func TestConcurrentSampledServing(t *testing.T) {
	s, tr := sampledServer(t, 0.5)
	const goroutines = 4
	const per = 20
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*per)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tk, err := s.Submit("tiny", SubmitOptions{Seed: int64(g*per + i)})
				if err != nil {
					errs <- err
					return
				}
				if _, err := tk.Result(); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st := tr.SamplerStats()
	if st.Seen != goroutines*per {
		t.Errorf("sampler saw %d decisions, want %d", st.Seen, goroutines*per)
	}
	if st.Kept == 0 || st.Kept == st.Seen {
		t.Errorf("rate 0.5 kept %d of %d — expected a genuine mix of both paths", st.Kept, st.Seen)
	}
	// Every kept head flushed a full tree; every tree flush recycled its
	// buffer. The span storage must hold exactly the kept trees.
	if trees := collectTrees(tr.Snapshot()); uint64(len(trees)) != st.Kept {
		t.Errorf("span storage holds %d request trees, sampler kept %d", len(trees), st.Kept)
	}
}
