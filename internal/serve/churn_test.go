package serve

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/vmcu-project/vmcu/internal/mcu"
)

// execGate deterministically holds executions mid-flight on selected
// devices, the lever the churn acceptance tests use to crash a device
// with provably in-flight work.
type execGate struct {
	release chan struct{}
	held    atomic.Int32
	match   func(d *device) bool
}

func newExecGate(match func(d *device) bool) *execGate {
	return &execGate{release: make(chan struct{}), match: match}
}

func (g *execGate) hook(d *device, _ *request) {
	if !g.match(d) {
		return
	}
	g.held.Add(1)
	<-g.release
}

// waitHeld polls until n executions are blocked inside the gate.
func (g *execGate) waitHeld(t *testing.T, n int32) {
	t.Helper()
	for i := 0; i < 10000; i++ {
		if g.held.Load() >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("only %d of %d executions reached the gate", g.held.Load(), n)
}

// overCommitMonitor polls the fleet snapshot for the ledger invariant —
// no device's used or peak-used bytes may ever exceed its capacity —
// until stop is closed. Violations is the count it observed.
func overCommitMonitor(s *Server, stop <-chan struct{}, violations *atomic.Int32) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		for _, d := range s.Metrics().Devices {
			if d.UsedBytes > d.CapacityBytes || d.PeakUsedBytes > d.CapacityBytes {
				violations.Add(1)
			}
		}
		time.Sleep(time.Millisecond)
	}
}

// assertAccounting checks the submission ledger: every accepted
// submission resolved into exactly one terminal class.
func assertAccounting(t *testing.T, m Metrics) {
	t.Helper()
	resolved := m.Completed + m.Failed + m.Canceled + m.ShedDeadline + m.DeviceLost
	if m.Submitted != resolved {
		t.Errorf("accounting: submitted %d != resolved %d (completed %d failed %d canceled %d shed %d lost %d)",
			m.Submitted, resolved, m.Completed, m.Failed, m.Canceled, m.ShedDeadline, m.DeviceLost)
	}
}

// TestChurnCrashMidRequestFailover is the churn acceptance test: a
// device crashes with a full complement of in-flight requests and a
// backlog of queued ones. The crash must force-release every reserved
// byte at the instant it happens (CrashDevice returns the abandoned
// count), no ticket may be lost, no pool may ever over-commit, and with
// a surviving device in the fleet every displaced request must fail
// over and complete there.
func TestChurnCrashMidRequestFailover(t *testing.T) {
	net := tinyModel()
	peak := peakOf(t, net)
	const slots = 4
	s, err := NewServer(Options{
		Devices: []DeviceConfig{
			{Name: "doomed", Profile: mcu.CortexM4(), PoolBytes: slots * peak, Slots: slots},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	gate := newExecGate(func(d *device) bool { return d.name == "doomed" })
	s.testExecGate = gate.hook

	stop := make(chan struct{})
	var violations atomic.Int32
	go overCommitMonitor(s, stop, &violations)

	if err := s.Register("tiny", net, ModelConfig{}); err != nil {
		t.Fatal(err)
	}
	const n = 12
	tickets := make([]*Ticket, 0, n)
	for i := 0; i < n; i++ {
		tk, err := s.Submit("tiny", SubmitOptions{Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	// All slots reserve + start executing; the rest stay queued behind
	// the full pool.
	gate.waitHeld(t, slots)

	// The rescue device joins on a different profile — its own shard —
	// before the crash, so failover also exercises cross-shard re-routing.
	if err := s.AddDevice(DeviceConfig{Name: "rescue", Profile: mcu.CortexM7(), PoolBytes: 4 * peak}); err != nil {
		t.Fatal(err)
	}

	abandoned, err := s.CrashDevice("doomed")
	if err != nil {
		t.Fatal(err)
	}
	if abandoned != slots*peak {
		t.Errorf("crash abandoned %d bytes, want the %d reserved by %d in-flight requests",
			abandoned, slots*peak, slots)
	}
	// The dead pool must be fully released at the crash instant, before
	// any doomed execution unwinds.
	for _, d := range s.Metrics().Devices {
		if d.Name == "doomed" {
			t.Errorf("crashed device still in the fleet snapshot")
		}
	}
	close(gate.release)

	for i, tk := range tickets {
		res, err := tk.Result()
		if err != nil {
			t.Fatalf("ticket %d lost to the crash: %v", i, err)
		}
		if res.Device != "rescue" {
			t.Errorf("ticket %d completed on %q, want the surviving device", i, res.Device)
		}
	}
	close(stop)
	if v := violations.Load(); v != 0 {
		t.Errorf("over-commit observed %d times during churn", v)
	}

	m := s.Metrics()
	assertAccounting(t, m)
	if m.Completed != n || m.DeviceLost != 0 {
		t.Errorf("completed %d, deviceLost %d; want %d and 0", m.Completed, m.DeviceLost, n)
	}
	if m.Requeued != n {
		t.Errorf("requeued %d, want %d (every request displaced exactly once)", m.Requeued, n)
	}
	if m.DeviceCrashes != 1 {
		t.Errorf("deviceCrashes %d, want 1", m.DeviceCrashes)
	}
}

// TestChurnCrashNoSurvivorResolvesDeviceLost crashes the only device:
// every in-flight and queued request must resolve with ErrDeviceLost —
// zero lost tickets — and a later AddDevice must restore service.
func TestChurnCrashNoSurvivorResolvesDeviceLost(t *testing.T) {
	net := tinyModel()
	peak := peakOf(t, net)
	const slots = 2
	s, err := NewServer(Options{
		Devices: []DeviceConfig{
			{Name: "only", Profile: mcu.CortexM4(), PoolBytes: slots * peak, Slots: slots},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	gate := newExecGate(func(d *device) bool { return d.name == "only" })
	s.testExecGate = gate.hook

	if err := s.Register("tiny", net, ModelConfig{}); err != nil {
		t.Fatal(err)
	}
	const n = 5
	tickets := make([]*Ticket, 0, n)
	for i := 0; i < n; i++ {
		tk, err := s.Submit("tiny", SubmitOptions{Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	gate.waitHeld(t, slots)

	abandoned, err := s.CrashDevice("only")
	if err != nil {
		t.Fatal(err)
	}
	if abandoned != slots*peak {
		t.Errorf("crash abandoned %d bytes, want %d", abandoned, slots*peak)
	}
	close(gate.release)

	for i, tk := range tickets {
		if _, err := tk.Result(); !errors.Is(err, ErrDeviceLost) {
			t.Errorf("ticket %d resolved with %v, want ErrDeviceLost", i, err)
		}
		if st := tk.State(); st != StateDeviceLost {
			t.Errorf("ticket %d state %v, want device-lost", i, st)
		}
	}
	m := s.Metrics()
	assertAccounting(t, m)
	if m.DeviceLost != n || m.Requeued != 0 || m.Completed != 0 {
		t.Errorf("deviceLost %d requeued %d completed %d; want %d, 0, 0",
			m.DeviceLost, m.Requeued, m.Completed, n)
	}

	// With the fleet empty, submissions are rejected (no usable pool).
	if _, err := s.Submit("tiny", SubmitOptions{}); !errors.Is(err, ErrDeviceLost) {
		t.Errorf("submit to empty fleet: %v, want ErrDeviceLost", err)
	}
	// Service resumes once a replacement joins — same profile, so it
	// lands in the crashed device's (now empty) shard.
	if err := s.AddDevice(DeviceConfig{Name: "replacement", Profile: mcu.CortexM4(), PoolBytes: 2 * peak}); err != nil {
		t.Fatal(err)
	}
	tk, err := s.Submit("tiny", SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := tk.Result(); err != nil || res.Device != "replacement" {
		t.Fatalf("post-replacement request: device %q, err %v", res.Device, err)
	}
}

// TestChurnRemoveDeviceDrains checks graceful removal: RemoveDevice
// blocks until the device's in-flight work completes normally, the
// device leaves the fleet with its name freed for reuse, and the
// surviving device keeps serving.
func TestChurnRemoveDeviceDrains(t *testing.T) {
	net := tinyModel()
	peak := peakOf(t, net)
	s, err := NewServer(Options{
		Devices: []DeviceConfig{
			{Name: "a", Profile: mcu.CortexM4(), PoolBytes: peak, Slots: 1},
			{Name: "b", Profile: mcu.CortexM4(), PoolBytes: peak, Slots: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	gate := newExecGate(func(*device) bool { return true })
	s.testExecGate = gate.hook

	if err := s.Register("tiny", net, ModelConfig{}); err != nil {
		t.Fatal(err)
	}
	// One request per single-slot device: both end up held mid-flight.
	tk1, err := s.Submit("tiny", SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tk2, err := s.Submit("tiny", SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gate.waitHeld(t, 2)

	removed := make(chan error, 1)
	go func() { removed <- s.RemoveDevice("a") }()

	// The drain must be visible (device marked draining) and must NOT
	// complete while its request is still in flight.
	draining := false
	for i := 0; i < 10000 && !draining; i++ {
		for _, d := range s.Metrics().Devices {
			if d.Name == "a" && d.Draining {
				draining = true
			}
		}
		time.Sleep(time.Millisecond)
	}
	if !draining {
		t.Fatal("draining device never reported Draining in the snapshot")
	}
	select {
	case err := <-removed:
		t.Fatalf("RemoveDevice returned (%v) with a request still in flight", err)
	default:
	}

	close(gate.release)
	if err := <-removed; err != nil {
		t.Fatalf("RemoveDevice: %v", err)
	}
	if _, err := tk1.Result(); err != nil {
		t.Errorf("request during drain: %v", err)
	}
	if _, err := tk2.Result(); err != nil {
		t.Errorf("request on surviving device: %v", err)
	}
	for _, d := range s.Metrics().Devices {
		if d.Name == "a" {
			t.Error("removed device still in the fleet snapshot")
		}
	}
	if err := s.RemoveDevice("a"); err == nil {
		t.Error("removing an already-removed device succeeded")
	}

	// The name is free again, and the re-added device serves.
	if err := s.AddDevice(DeviceConfig{Name: "a", Profile: mcu.CortexM4(), PoolBytes: peak, Slots: 1}); err != nil {
		t.Fatalf("re-adding a drained device's name: %v", err)
	}
	tk3, err := s.Submit("tiny", SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk3.Result(); err != nil {
		t.Errorf("request after re-add: %v", err)
	}
	m := s.Metrics()
	assertAccounting(t, m)
	if m.Completed != 3 {
		t.Errorf("completed %d, want 3", m.Completed)
	}
}

// TestDegradedModeSaturation floods a shard past its degrade threshold:
// the mode must engage (and be visible in the snapshot), admissions made
// while degraded must be counted, nothing may be shed, the sojourn p99
// must stay bounded, and the mode must disengage once the backlog
// drains (hysteresis).
func TestDegradedModeSaturation(t *testing.T) {
	net := tinyModel()
	peak := peakOf(t, net)
	s, err := NewServer(Options{
		Devices: []DeviceConfig{
			{Name: "dev", Profile: mcu.CortexM4(), PoolBytes: 3 * peak, Slots: 2},
		},
		QueueCap:     64,
		DegradeDepth: 8,
		Mode:         ExecDryRun,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	gate := newExecGate(func(*device) bool { return true })
	s.testExecGate = gate.hook

	if err := s.Register("tiny", net, ModelConfig{}); err != nil {
		t.Fatal(err)
	}
	const n = 20
	tickets := make([]*Ticket, 0, n)
	for i := 0; i < n; i++ {
		tk, err := s.Submit("tiny", SubmitOptions{})
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	// Both slots held; the backlog (18 queued > DegradeDepth 8) has
	// engaged degraded mode before any drain begins.
	gate.waitHeld(t, 2)
	mid := s.Metrics()
	if len(mid.Shards) != 1 || !mid.Shards[0].Degraded {
		t.Fatalf("shard not degraded at depth %d (threshold 8)", mid.QueueDepth)
	}
	if mid.DegradedEngaged == 0 {
		t.Error("degradedEngaged not counted")
	}

	close(gate.release)
	for i, tk := range tickets {
		if _, err := tk.Result(); err != nil {
			t.Fatalf("ticket %d under saturation: %v", i, err)
		}
	}
	m := s.Metrics()
	assertAccounting(t, m)
	if m.Completed != n || m.ShedDeadline != 0 {
		t.Errorf("completed %d shed %d; want %d served, nothing shed", m.Completed, m.ShedDeadline, n)
	}
	if m.DegradedAdmissions == 0 {
		t.Error("no admissions counted as degraded while draining the backlog")
	}
	if m.LatencyP99 <= 0 || m.LatencyP99 > 30*time.Second {
		t.Errorf("p99 %v not bounded", m.LatencyP99)
	}
	// Hysteresis: the drained shard must have disengaged.
	if m.Shards[0].Degraded {
		t.Error("shard still degraded after the backlog drained")
	}
}

// TestDegradedAdmissionPicksSmallestVariant pins the degraded-mode
// selection policy at the admission step: a degraded shard admits the
// smallest-peak variant even when a faster, larger one fits, and a
// healthy shard keeps picking the fastest fitting one.
func TestDegradedAdmissionPicksSmallestVariant(t *testing.T) {
	mdl := &model{
		name:    "two-variant",
		minPeak: 20,
		variants: []modelVariant{
			// Fast but large vs slow but small: cycle counts priced via
			// ALU ops under the device profile.
			{desc: "fast-large", peak: 80, stats: mcu.Stats{ALUOps: 10}},
			{desc: "slow-small", peak: 20, stats: mcu.Stats{ALUOps: 1000}},
		},
	}
	for _, tc := range []struct {
		degraded bool
		want     string
	}{
		{degraded: false, want: "fast-large"},
		{degraded: true, want: "slow-small"},
	} {
		t.Run(fmt.Sprintf("degraded=%v", tc.degraded), func(t *testing.T) {
			s, sh, d := bareShard(t, 100, 4)
			s.mode = ExecDryRun
			d.profile = mcu.CortexM4()
			req := queued(1, mdl.minPeak, 0)
			req.mdl = mdl
			req.srv = s
			req.submitted = time.Now()
			sh.mu.Lock()
			sh.degraded = tc.degraded
			s.admitLocked(sh, d, req)
			sh.mu.Unlock()
			res, err := (&Ticket{r: req}).Result()
			if err != nil {
				t.Fatal(err)
			}
			if res.Variant != tc.want {
				t.Errorf("admitted variant %q, want %q", res.Variant, tc.want)
			}
			s.execs.Wait()
		})
	}
}

// TestDegradedModeHysteresis drives the engage/disengage thresholds
// directly: engage at depth >= degradeDepth, disengage only at half.
func TestDegradedModeHysteresis(t *testing.T) {
	s, sh, _ := bareShard(t, 1000, 1)
	s.degradeDepth = 4
	sh.mu.Lock()
	defer sh.mu.Unlock()
	reqs := make([]*request, 0, 4)
	for i := 0; i < 4; i++ {
		r := queued(uint64(i), 10, 0)
		reqs = append(reqs, r)
		s.enqueueLocked(sh, r)
	}
	if !sh.degraded || sh.m.degradedEngaged != 1 {
		t.Fatalf("depth 4 with threshold 4: degraded=%v engaged=%d", sh.degraded, sh.m.degradedEngaged)
	}
	// Falling to 3 (> half) must NOT disengage — no flapping at the edge.
	sh.q.remove(reqs[3])
	sh.noteQueueChangedLocked(s.degradeDepth)
	if !sh.degraded {
		t.Fatal("disengaged above the half-threshold hysteresis floor")
	}
	// Falling to 2 (== half) disengages.
	sh.q.remove(reqs[2])
	sh.noteQueueChangedLocked(s.degradeDepth)
	if sh.degraded {
		t.Fatal("still degraded at half the threshold")
	}
	// Climbing back re-engages and counts a second engagement.
	for i := 4; i < 6; i++ {
		s.enqueueLocked(sh, queued(uint64(i), 10, 0))
	}
	if !sh.degraded || sh.m.degradedEngaged != 2 {
		t.Fatalf("re-engage: degraded=%v engaged=%d", sh.degraded, sh.m.degradedEngaged)
	}
}
