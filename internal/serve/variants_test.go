package serve

import (
	"sync"
	"testing"
	"time"

	"github.com/vmcu-project/vmcu/internal/graph"
	"github.com/vmcu-project/vmcu/internal/mcu"
	"github.com/vmcu-project/vmcu/internal/netplan"
)

// imagenetBudget returns a latency budget strictly between the fastest and
// slowest frontier variants' estimated latencies on the profile, so a
// server restricted to the memory-optimal plan must miss it while variant
// selection can meet it.
func imagenetBudget(t *testing.T, prof mcu.Profile) (budget, fast, slow time.Duration) {
	t.Helper()
	vs, err := netplan.Pareto(prof, graph.ImageNet(), netplan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vs {
		d := time.Duration(v.Est.Total.LatencySeconds(prof) * float64(time.Second))
		if fast == 0 || d < fast {
			fast = d
		}
		if d > slow {
			slow = d
		}
	}
	if fast >= slow {
		t.Fatalf("frontier latencies degenerate: fast %v slow %v", fast, slow)
	}
	return fast + (slow-fast)/2, fast, slow
}

// TestVariantSelectionMeetsPreviouslyMissedBudgets is the acceptance bar:
// with only the memory-optimal plan registered, an ImageNet request's
// estimated on-device latency misses a budget between the frontier's
// extremes; registering the Pareto frontier lets admission select a faster
// variant that meets the same budget on the same device — with zero
// ledger over-commits either way.
func TestVariantSelectionMeetsPreviouslyMissedBudgets(t *testing.T) {
	prof := mcu.CortexM7()
	budget, _, _ := imagenetBudget(t, prof)

	run := func(pareto bool) (Result, Metrics) {
		s, err := NewServer(Options{
			Devices: []DeviceConfig{{Name: "m7", Profile: prof}},
			Mode:    ExecDryRun,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Register("imagenet", graph.ImageNet(), ModelConfig{
			Pareto:        pareto,
			LatencyBudget: budget,
		}); err != nil {
			t.Fatal(err)
		}
		tk, err := s.Submit("imagenet", SubmitOptions{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := tk.Result()
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return res, s.Metrics()
	}

	before, mBefore := run(false)
	if before.MetLatencyBudget {
		t.Fatalf("memory-optimal-only serving met the %v budget (estimated %v) — no headroom to win",
			budget, before.EstimatedLatency)
	}
	if mBefore.LatencyBudgetMissed != 1 || mBefore.LatencyBudgetMet != 0 {
		t.Errorf("miss accounting: met %d missed %d, want 0/1",
			mBefore.LatencyBudgetMet, mBefore.LatencyBudgetMissed)
	}
	if mBefore.VariantUpgrades != 0 {
		t.Errorf("single-variant model recorded %d upgrades", mBefore.VariantUpgrades)
	}

	after, mAfter := run(true)
	if !after.MetLatencyBudget {
		t.Fatalf("frontier serving still missed the budget: estimated %v > %v (variant %q)",
			after.EstimatedLatency, budget, after.Variant)
	}
	if after.EstimatedLatency >= before.EstimatedLatency {
		t.Errorf("selected variant %q (%v) not faster than the memory-optimal %v",
			after.Variant, after.EstimatedLatency, before.EstimatedLatency)
	}
	if after.PeakBytes <= before.PeakBytes {
		t.Errorf("faster variant's peak %d not above the memory-optimal %d — speed was free?",
			after.PeakBytes, before.PeakBytes)
	}
	if mAfter.LatencyBudgetMet != 1 || mAfter.LatencyBudgetMissed != 0 {
		t.Errorf("met accounting: met %d missed %d, want 1/0",
			mAfter.LatencyBudgetMet, mAfter.LatencyBudgetMissed)
	}
	if mAfter.VariantUpgrades != 1 {
		t.Errorf("upgrade accounting: %d, want 1", mAfter.VariantUpgrades)
	}
	for _, m := range []Metrics{mBefore, mAfter} {
		for _, d := range m.Devices {
			if d.PeakUsedBytes > d.CapacityBytes {
				t.Errorf("device %s over-committed: peak %d of %d", d.Name, d.PeakUsedBytes, d.CapacityBytes)
			}
			if d.Refused != 0 {
				t.Errorf("device %s refused %d reservations", d.Name, d.Refused)
			}
		}
	}
}

// TestVariantSelectionDegradesUnderPoolPressure: when the pool only holds
// the memory-optimal variant, admission falls back to it and the budget
// miss is accounted — the deadline-miss side of variant selection.
func TestVariantSelectionDegradesUnderPoolPressure(t *testing.T) {
	prof := mcu.CortexM7()
	budget, _, _ := imagenetBudget(t, prof)
	minPeak, err := netplan.Plan(graph.ImageNet(), netplan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(Options{
		// Exactly the memory-optimal plan's bytes: no upgrade is possible.
		Devices: []DeviceConfig{{Name: "tight", Profile: prof, PoolBytes: minPeak.PeakBytes}},
		Mode:    ExecDryRun,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Register("imagenet", graph.ImageNet(), ModelConfig{
		Pareto:        true,
		LatencyBudget: budget,
	}); err != nil {
		t.Fatal(err)
	}
	tk, err := s.Submit("imagenet", SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tk.Result()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if res.PeakBytes != minPeak.PeakBytes {
		t.Errorf("admitted peak %d, want the memory-optimal %d", res.PeakBytes, minPeak.PeakBytes)
	}
	if res.MetLatencyBudget {
		t.Error("tight pool cannot meet the budget, yet the miss was not accounted")
	}
	m := s.Metrics()
	if m.VariantUpgrades != 0 || m.LatencyBudgetMissed != 1 {
		t.Errorf("upgrades %d missed %d, want 0/1", m.VariantUpgrades, m.LatencyBudgetMissed)
	}
}

// TestVariantExecutionVerifies proves an upgraded variant's execution path
// is the real one: the selected options re-derive the variant's plan
// through the cache and the bit-exact verifier passes on it.
func TestVariantExecutionVerifies(t *testing.T) {
	prof := mcu.CortexM7()
	s, err := NewServer(Options{Devices: []DeviceConfig{{Name: "m7", Profile: prof}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Register("vww", graph.VWW(), ModelConfig{Pareto: true}); err != nil {
		t.Fatal(err)
	}
	tk, err := s.Submit("vww", SubmitOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tk.Result()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if res.Run == nil || !res.Run.AllVerified || res.Run.Violations != 0 {
		t.Fatalf("variant execution did not verify: %+v", res.Run)
	}
	if res.Variant == "" {
		t.Error("result carries no variant name")
	}
	if res.Run.Plan.PeakBytes != res.PeakBytes {
		t.Errorf("executed plan peak %d differs from reserved %d", res.Run.Plan.PeakBytes, res.PeakBytes)
	}
}

// TestVariantSelectionConcurrent floods a small fleet with frontier-
// registered requests under -race: every ticket resolves, no ledger
// over-commit, and co-resident variant mixes stay within every pool.
func TestVariantSelectionConcurrent(t *testing.T) {
	prof := mcu.CortexM7()
	minPeak, err := netplan.Plan(graph.ImageNet(), netplan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(Options{
		Devices: []DeviceConfig{
			// Three memory-optimal residents, or one upgraded plus change.
			{Name: "a", Profile: prof, PoolBytes: 3*minPeak.PeakBytes + 4096, Slots: 3},
			{Name: "b", Profile: prof, PoolBytes: minPeak.PeakBytes + 1024, Slots: 2},
		},
		Mode: ExecDryRun,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Register("imagenet", graph.ImageNet(), ModelConfig{Pareto: true}); err != nil {
		t.Fatal(err)
	}
	const n = 48
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tk, err := s.Submit("imagenet", SubmitOptions{Seed: int64(i)})
			if err != nil {
				errs[i] = err
				return
			}
			_, errs[i] = tk.Result()
		}(i)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	m := s.Metrics()
	if m.Completed != n {
		t.Errorf("completed %d of %d", m.Completed, n)
	}
	for _, d := range m.Devices {
		if d.PeakUsedBytes > d.CapacityBytes {
			t.Errorf("device %s over-committed: peak %d of %d", d.Name, d.PeakUsedBytes, d.CapacityBytes)
		}
	}
}
