package serve

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/vmcu-project/vmcu/internal/graph"
	"github.com/vmcu-project/vmcu/internal/mcu"
	"github.com/vmcu-project/vmcu/internal/netplan"
	"github.com/vmcu-project/vmcu/internal/plan"
)

// tinyModel is a fast single-module network for lifecycle tests: its
// whole verification run takes a few milliseconds, so the tests exercise
// real execution without the Table-2 backbones' cost.
func tinyModel() graph.Network {
	return graph.Network{
		Name: "tiny",
		Modules: []plan.Bottleneck{{
			Name: "M0", H: 8, W: 8, Cin: 4, Cmid: 16, Cout: 4,
			R: 3, S: 3, S1: 1, S2: 1, S3: 1,
		}},
	}
}

// peakOf returns a network's planned whole-network peak — the admission
// currency the server reserves per request.
func peakOf(t *testing.T, net graph.Network) int {
	t.Helper()
	np, err := netplan.Plan(net, netplan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return np.PeakBytes
}

// waitResident polls until the ticket leaves the queue (admitted, running
// or done) so tests can stage deterministic queue contents behind it.
func waitResident(t *testing.T, tk *Ticket) {
	t.Helper()
	for i := 0; i < 10000; i++ {
		switch tk.State() {
		case StateAdmitted, StateRunning, StateDone:
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("request %d never admitted (state %v)", tk.ID(), tk.State())
}

func TestServeLifecycle(t *testing.T) {
	s, err := NewServer(Options{
		Devices: []DeviceConfig{{Name: "m4", Profile: mcu.CortexM4()}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Register("tiny", tinyModel(), ModelConfig{}); err != nil {
		t.Fatal(err)
	}
	const n = 8
	tickets := make([]*Ticket, n)
	for i := range tickets {
		tk, err := s.Submit("tiny", SubmitOptions{Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		tickets[i] = tk
	}
	for i, tk := range tickets {
		res, err := tk.Result()
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if tk.State() != StateDone {
			t.Errorf("request %d state = %v, want done", i, tk.State())
		}
		if res.Run == nil || !res.Run.AllVerified || res.Run.Violations != 0 {
			t.Errorf("request %d not verified: %+v", i, res.Run)
		}
		if res.Device != "m4" || res.Model != "tiny" || res.PeakBytes <= 0 {
			t.Errorf("request %d result %+v", i, res)
		}
		if res.Latency <= 0 || res.QueueWait < 0 || res.QueueWait > res.Latency {
			t.Errorf("request %d timing: wait %v latency %v", i, res.QueueWait, res.Latency)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.Submitted != n || m.Completed != n || m.Failed != 0 {
		t.Errorf("metrics %d submitted / %d completed / %d failed, want %d/%d/0", m.Submitted, m.Completed, m.Failed, n, n)
	}
	if m.QueueDepth != 0 || m.ThroughputRPS <= 0 || m.LatencyP50 <= 0 || m.LatencyP99 < m.LatencyP50 {
		t.Errorf("metrics snapshot inconsistent: %+v", m)
	}
	d := m.Devices[0]
	if d.UsedBytes != 0 || d.Residents != 0 || d.Active != 0 {
		t.Errorf("drained device still holds state: %+v", d)
	}
	if d.PeakUsedBytes <= 0 || d.PeakUsedBytes > d.CapacityBytes {
		t.Errorf("device peak %d outside (0, %d]", d.PeakUsedBytes, d.CapacityBytes)
	}
	if m.Cache.Hits == 0 {
		t.Error("plan cache never hit across repeated submissions")
	}
	// Submissions after Close are explicitly rejected.
	if _, err := s.Submit("tiny", SubmitOptions{}); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close: %v, want ErrClosed", err)
	}
}

func TestServeRejections(t *testing.T) {
	vwwPeak := peakOf(t, graph.VWW())
	s, err := NewServer(Options{
		Devices:  []DeviceConfig{{Name: "m4", Profile: mcu.CortexM4(), PoolBytes: vwwPeak, Slots: 1}},
		QueueCap: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A model whose peak exceeds every pool is rejected at registration.
	if err := s.Register("imagenet", graph.ImageNet(), ModelConfig{}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized model registration: %v, want ErrTooLarge", err)
	}
	if err := s.Register("vww", graph.VWW(), ModelConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("tiny", tinyModel(), ModelConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit("nope", SubmitOptions{}); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("unknown model: %v, want ErrUnknownModel", err)
	}

	// Occupy the whole pool with one VWW run, then fill the queue: the
	// bounded queue must shed the overflow submission.
	busy, err := s.Submit("vww", SubmitOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitResident(t, busy)
	q1, err := s.Submit("tiny", SubmitOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	q2, err := s.Submit("tiny", SubmitOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit("tiny", SubmitOptions{Seed: 4}); !errors.Is(err, ErrQueueFull) {
		t.Errorf("overflow submit: %v, want ErrQueueFull", err)
	}
	// Cancel one queued request; the other drains normally on Close.
	if !q2.Cancel() {
		t.Error("cancel of queued request failed")
	}
	if _, err := q2.Result(); !errors.Is(err, ErrCanceled) {
		t.Errorf("canceled result: %v, want ErrCanceled", err)
	}
	if q2.Cancel() {
		t.Error("second cancel succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for _, tk := range []*Ticket{busy, q1} {
		if _, err := tk.Result(); err != nil {
			t.Errorf("request %d: %v", tk.ID(), err)
		}
	}
	m := s.Metrics()
	if m.RejectedQueueFull != 1 || m.Canceled != 1 || m.Completed != 2 {
		t.Errorf("metrics %+v: want 1 queue-full, 1 canceled, 2 completed", m)
	}
}

func TestServeDeadlineShed(t *testing.T) {
	vwwPeak := peakOf(t, graph.VWW())
	s, err := NewServer(Options{
		Devices: []DeviceConfig{{Name: "m4", Profile: mcu.CortexM4(), PoolBytes: vwwPeak, Slots: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Register("vww", graph.VWW(), ModelConfig{}); err != nil {
		t.Fatal(err)
	}
	// Per-model deadline: every "impatient" request sheds after 10ms.
	if err := s.Register("impatient", tinyModel(), ModelConfig{MaxQueueWait: 10 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	busy, err := s.Submit("vww", SubmitOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitResident(t, busy)
	// The pool is fully reserved by the VWW run (tens of ms at least), so
	// the impatient request cannot be admitted before its deadline.
	shed, err := s.Submit("impatient", SubmitOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := shed.Result(); !errors.Is(err, ErrDeadline) {
		t.Errorf("deadline result: %v, want ErrDeadline", err)
	}
	if shed.State() != StateRejected {
		t.Errorf("shed state = %v, want rejected", shed.State())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := busy.Result(); err != nil {
		t.Error(err)
	}
	if m := s.Metrics(); m.ShedDeadline != 1 || m.Completed != 1 {
		t.Errorf("metrics %+v: want 1 shed, 1 completed", m)
	}
}

// TestServePropertyConcurrentSubmitCancel is the server-level over-commit
// property test: a pool sized for exactly three co-resident tiny requests,
// hammered by concurrent submitters and cancelers (run with -race). The
// ledger must never exceed the pool, and every accepted submission must
// resolve to exactly one terminal outcome — nothing lost, nothing
// double-counted.
func TestServePropertyConcurrentSubmitCancel(t *testing.T) {
	tinyPeak := peakOf(t, tinyModel())
	pool := 3 * tinyPeak
	s, err := NewServer(Options{
		Devices:  []DeviceConfig{{Name: "m4", Profile: mcu.CortexM4(), PoolBytes: pool, Slots: 3}},
		QueueCap: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Register("tiny", tinyModel(), ModelConfig{}); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var tickets []*Ticket
	var fullRejects uint64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 100))
			for i := 0; i < 12; i++ {
				tk, err := s.Submit("tiny", SubmitOptions{Seed: int64(g*100 + i)})
				if err != nil {
					if !errors.Is(err, ErrQueueFull) {
						t.Errorf("goroutine %d: %v", g, err)
					} else {
						mu.Lock()
						fullRejects++
						mu.Unlock()
					}
					continue
				}
				mu.Lock()
				tickets = append(tickets, tk)
				mu.Unlock()
				if rng.Intn(2) == 0 {
					tk.Cancel() // racing the dispatcher is the point
				}
			}
		}(g)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	var done, canceled uint64
	for _, tk := range tickets {
		_, err := tk.Result()
		switch {
		case err == nil:
			done++
		case errors.Is(err, ErrCanceled):
			canceled++
		default:
			t.Errorf("request %d: unexpected outcome %v", tk.ID(), err)
		}
	}
	m := s.Metrics()
	if m.Submitted != uint64(len(tickets)) {
		t.Errorf("submitted %d != %d tickets", m.Submitted, len(tickets))
	}
	if m.Submitted != m.Completed+m.Failed+m.Canceled+m.ShedDeadline {
		t.Errorf("lost requests: %d submitted vs %d+%d+%d+%d resolved",
			m.Submitted, m.Completed, m.Failed, m.Canceled, m.ShedDeadline)
	}
	if m.Completed != done || m.Canceled != canceled || m.Failed != 0 {
		t.Errorf("outcome counts: metrics %d/%d/%d vs observed %d/%d",
			m.Completed, m.Canceled, m.Failed, done, canceled)
	}
	if m.RejectedQueueFull != fullRejects {
		t.Errorf("queue-full rejects: metrics %d vs observed %d", m.RejectedQueueFull, fullRejects)
	}
	d := m.Devices[0]
	if d.PeakUsedBytes > pool {
		t.Errorf("OVER-COMMIT: peak %d exceeded pool %d", d.PeakUsedBytes, pool)
	}
	if d.UsedBytes != 0 || d.Residents != 0 {
		t.Errorf("pool not drained: %+v", d)
	}
	if d.PeakUsedBytes < 2*tinyPeak {
		t.Errorf("co-residency never happened: peak %d < 2×%d", d.PeakUsedBytes, tinyPeak)
	}
}

// TestServeFleet64MixedConcurrent is the acceptance bar: 64 concurrent
// mixed VWW+ImageNet requests on a two-device fleet (Cortex-M4 128 KB +
// Cortex-M7 512 KB), every request fully verified, zero pool over-commits
// (sampled continuously), and zero lost requests. Run with -race.
func TestServeFleet64MixedConcurrent(t *testing.T) {
	s, err := NewServer(Options{
		Devices: []DeviceConfig{
			{Name: "m4", Profile: mcu.CortexM4(), Slots: 8},
			{Name: "m7", Profile: mcu.CortexM7(), Slots: 8},
		},
		QueueCap: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Register("vww", graph.VWW(), ModelConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("imagenet", graph.ImageNet(), ModelConfig{}); err != nil {
		t.Fatal(err)
	}

	// Continuous over-commit monitor, alongside the ledger's own invariant.
	stop := make(chan struct{})
	var monitor sync.WaitGroup
	monitor.Add(1)
	go func() {
		defer monitor.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, d := range s.Metrics().Devices {
				if d.UsedBytes > d.CapacityBytes {
					t.Errorf("OVER-COMMIT on %s: %d used of %d", d.Name, d.UsedBytes, d.CapacityBytes)
					return
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()

	const total, imagenets = 64, 4
	tickets := make([]*Ticket, total)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < total; i += 8 {
				name := "vww"
				if i < imagenets {
					name = "imagenet"
				}
				tk, err := s.Submit(name, SubmitOptions{Seed: int64(i)})
				if err != nil {
					t.Errorf("submit %d (%s): %v", i, name, err)
					return
				}
				tickets[i] = tk
			}
		}(g)
	}
	wg.Wait()

	for i, tk := range tickets {
		if tk == nil {
			continue // submit error already reported
		}
		res, err := tk.Result()
		if err != nil {
			t.Errorf("request %d (%s): %v", i, tk.Model(), err)
			continue
		}
		if res.Run == nil || !res.Run.AllVerified || res.Run.Violations != 0 {
			t.Errorf("request %d (%s) on %s: not verified", i, tk.Model(), res.Device)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	monitor.Wait()

	m := s.Metrics()
	if m.Submitted != total || m.Completed != total ||
		m.Failed != 0 || m.Canceled != 0 || m.ShedDeadline != 0 || m.RejectedQueueFull != 0 {
		t.Errorf("lost requests: %+v", m)
	}
	if m.QueueDepth != 0 {
		t.Errorf("queue not drained: depth %d", m.QueueDepth)
	}
	if m.ThroughputRPS <= 0 || m.LatencyP50 <= 0 || m.LatencyP95 < m.LatencyP50 || m.LatencyP99 < m.LatencyP95 {
		t.Errorf("throughput/latency snapshot inconsistent: %.2f rps, p50 %v p95 %v p99 %v",
			m.ThroughputRPS, m.LatencyP50, m.LatencyP95, m.LatencyP99)
	}
	vwwPeak := peakOf(t, graph.VWW())
	maxPeakUsed, fleetCompleted := 0, uint64(0)
	for _, d := range m.Devices {
		if d.PeakUsedBytes > d.CapacityBytes {
			t.Errorf("OVER-COMMIT on %s: peak %d of %d", d.Name, d.PeakUsedBytes, d.CapacityBytes)
		}
		if d.UsedBytes != 0 || d.Residents != 0 || d.Active != 0 {
			t.Errorf("device %s not drained: %+v", d.Name, d)
		}
		if d.PeakUsedBytes > maxPeakUsed {
			maxPeakUsed = d.PeakUsedBytes
		}
		fleetCompleted += d.Completed
	}
	if fleetCompleted != total {
		t.Errorf("per-device completions sum to %d, want %d", fleetCompleted, total)
	}
	// The point of the subsystem: models actually co-reside in one pool.
	if maxPeakUsed < 2*vwwPeak {
		t.Errorf("no co-residency observed: max device peak %d < 2×VWW peak %d", maxPeakUsed, vwwPeak)
	}
	t.Logf("fleet served %d requests at %.1f req/s; p50=%v p95=%v p99=%v; max pool peak %.1f%%",
		m.Completed, m.ThroughputRPS, m.LatencyP50, m.LatencyP95, m.LatencyP99,
		100*float64(maxPeakUsed)/float64(mcu.CortexM7().RAMBytes()))
}

// TestServeDryRunFlood floods the admission machinery with more requests
// than the simulated kernels could ever execute in test time, proving the
// queue/ledger path stands alone: every request resolves, nothing leaks.
func TestServeDryRunFlood(t *testing.T) {
	s, err := NewServer(Options{
		Devices:  []DeviceConfig{{Name: "m4", Profile: mcu.CortexM4(), Slots: 4}},
		QueueCap: 2048,
		Mode:     ExecDryRun,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Register("vww", graph.VWW(), ModelConfig{}); err != nil {
		t.Fatal(err)
	}
	const n = 1000
	tickets := make([]*Ticket, 0, n)
	for i := 0; i < n; i++ {
		tk, err := s.Submit("vww", SubmitOptions{Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for _, tk := range tickets {
		res, err := tk.Result()
		if err != nil {
			t.Fatal(err)
		}
		if res.Run != nil {
			t.Fatal("dry run executed kernels")
		}
	}
	m := s.Metrics()
	if m.Completed != n || m.Failed != 0 {
		t.Errorf("dry-run flood: %+v", m)
	}
	if m.Devices[0].UsedBytes != 0 || m.Devices[0].Residents != 0 {
		t.Errorf("pool leaked: %+v", m.Devices[0])
	}
}
