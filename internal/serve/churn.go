package serve

import (
	"fmt"
	"sync"
	"time"
)

// Device churn: the fleet is mutable while the server runs.
//
//   - AddDevice grows a shard (or creates one for a new profile) and
//     starts the device's dispatcher; queued work starts flowing to it on
//     the next wake-up.
//   - RemoveDevice drains gracefully: the device stops taking work,
//     RemoveDevice blocks until its in-flight requests finish (every
//     ledger byte released by the normal completion path), then drops it.
//   - CrashDevice simulates failure mid-request: the device is dropped
//     immediately and its ledger abandoned — every reserved byte is
//     force-released at the instant of the crash, so the pool accounting
//     never depends on doomed executions unwinding. Each in-flight
//     request is re-queued once onto a surviving device, or resolved with
//     ErrDeviceLost.
//
// Either way, when a shard's largest usable pool shrinks, queued requests
// no surviving device could ever admit are evacuated and re-routed to
// other shards (or resolved with ErrDeviceLost), so nothing waits forever
// on a device that is gone.

// AddDevice adds one device to the running fleet, creating a new shard if
// no existing device shares its profile. The device's dispatcher starts
// immediately.
func (s *Server) AddDevice(cfg DeviceConfig) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	d, err := s.addDeviceLocked(cfg)
	s.mu.Unlock()
	if err != nil {
		return err
	}
	go s.dispatch(d)
	return nil
}

// addDeviceLocked creates the device, places it in its profile's shard
// (creating the shard if needed), and accounts it in the dispatcher wait
// group — the caller starts the goroutine after releasing Server.mu.
// Runs with Server.mu held.
func (s *Server) addDeviceLocked(cfg DeviceConfig) (*device, error) {
	name := cfg.Name
	if name == "" {
		name = fmt.Sprintf("dev%d", s.devSeq)
	}
	s.devSeq++
	if s.devNames[name] {
		return nil, fmt.Errorf("serve: duplicate device name %q", name)
	}
	pool := cfg.PoolBytes
	if pool == 0 {
		pool = cfg.Profile.RAMBytes()
	}
	led, err := NewLedger(pool)
	if err != nil {
		return nil, fmt.Errorf("serve: device %s: %w", name, err)
	}
	slots := cfg.Slots
	if slots <= 0 {
		slots = DefaultSlots
	}
	var sh *shard
	for _, cand := range s.shards {
		if cand.profile == cfg.Profile {
			sh = cand
			break
		}
	}
	if sh == nil {
		sh = &shard{srv: s, index: len(s.shards), key: cfg.Profile.Name, profile: cfg.Profile}
		sh.cond = sync.NewCond(&sh.mu)
		sh.hQueueDepth = s.ins.queueDepth.With(sh.key)
		sh.hDegraded = s.ins.degraded.With(sh.key)
		sh.hRequeued = s.ins.requeued.With(sh.key)
		sh.hVariantUpgrades = s.ins.variantUpgrades.With(sh.key)
		sh.hDegradedAdmissions = s.ins.degradedAdmissions.With(sh.key)
		s.shards = append(s.shards, sh)
	}
	d := &device{name: name, profile: cfg.Profile, ledger: led, slots: slots, sh: sh}
	d.hPoolUsed = s.ins.poolUsed.With(name, sh.key)
	d.hPoolCap = s.ins.poolCap.With(name, sh.key)
	d.hPoolCap.Set(float64(pool))
	d.tracePoolUsed()
	sh.mu.Lock()
	sh.devices = append(sh.devices, d)
	sh.updatePoolMaxLocked()
	sh.mu.Unlock()
	s.devNames[name] = true
	if pool > s.maxPool {
		s.maxPool = pool
		s.refProfile = cfg.Profile
	}
	s.dispatchers.Add(1)
	return d, nil
}

// RemoveDevice drains one device gracefully: it stops taking new work,
// blocks until every in-flight request on it has finished (ledger empty),
// then drops it from the fleet. Queued requests only the removed device's
// pool could hold are evacuated and re-routed.
func (s *Server) RemoveDevice(name string) error {
	sh, d := s.findDevice(name)
	if d == nil {
		return fmt.Errorf("serve: unknown device %q", name)
	}
	sh.mu.Lock()
	if d.dead || d.removed || d.draining {
		sh.mu.Unlock()
		return fmt.Errorf("serve: device %q already removed or crashed", name)
	}
	d.draining = true
	sh.updatePoolMaxLocked()
	sh.cond.Broadcast()
	for d.active > 0 && !d.dead {
		sh.cond.Wait()
	}
	if d.dead {
		// Crashed while draining; CrashDevice already dropped it.
		sh.mu.Unlock()
		return fmt.Errorf("serve: device %q crashed during drain", name)
	}
	if res := d.ledger.Residents(); res != 0 {
		// Cannot happen: every release precedes the active-- it unblocks.
		sh.mu.Unlock()
		return fmt.Errorf("serve: device %q drained with %d residents", name, res)
	}
	d.removed = true
	sh.dropDeviceLocked(d)
	// The device is gone: zero its gauges so the scrape reflects a fleet
	// without it rather than freezing the last observed values.
	d.hPoolUsed.Set(0)
	d.hPoolCap.Set(0)
	evacuated := sh.q.drainOver(int(sh.poolMax.Load()))
	for _, req := range evacuated {
		s.traceEvacuated(sh, req)
	}
	sh.noteQueueChangedLocked(s.degradeDepth)
	sh.cond.Broadcast()
	sh.mu.Unlock()
	s.forgetDeviceName(name)
	s.reroute(evacuated, name)
	return nil
}

// CrashDevice simulates one device failing mid-request: it is dropped
// from its shard immediately and its ledger abandoned. The abandoned byte
// count is returned so callers (and tests) can prove the pool was fully
// released at the instant of the crash. In-flight requests fail over —
// re-queued once onto a surviving device, or resolved with ErrDeviceLost
// — when their (void) executions unwind; queued requests no surviving
// pool can hold are evacuated and re-routed.
func (s *Server) CrashDevice(name string) (abandonedBytes int, err error) {
	sh, d := s.findDevice(name)
	if d == nil {
		return 0, fmt.Errorf("serve: unknown device %q", name)
	}
	sh.mu.Lock()
	if d.dead || d.removed {
		sh.mu.Unlock()
		return 0, fmt.Errorf("serve: device %q already removed or crashed", name)
	}
	d.dead = true
	sh.dropDeviceLocked(d)
	bytes, _ := d.ledger.Abandon()
	d.hPoolUsed.Set(0)
	d.hPoolCap.Set(0)
	sh.m.deviceCrashes++
	evacuated := sh.q.drainOver(int(sh.poolMax.Load()))
	for _, req := range evacuated {
		s.traceEvacuated(sh, req)
	}
	sh.noteQueueChangedLocked(s.degradeDepth)
	sh.cond.Broadcast()
	sh.mu.Unlock()
	s.forgetDeviceName(name)
	s.reroute(evacuated, name)
	return bytes, nil
}

// findDevice locates a live device by name, returning its shard.
func (s *Server) findDevice(name string) (*shard, *device) {
	s.mu.Lock()
	shards := append([]*shard(nil), s.shards...)
	s.mu.Unlock()
	for _, sh := range shards {
		sh.mu.Lock()
		for _, d := range sh.devices {
			if d.name == name {
				sh.mu.Unlock()
				return sh, d
			}
		}
		sh.mu.Unlock()
	}
	return nil, nil
}

// forgetDeviceName frees a removed device's name for reuse.
func (s *Server) forgetDeviceName(name string) {
	s.mu.Lock()
	delete(s.devNames, name)
	s.mu.Unlock()
}

// failover handles an in-flight request whose device died under it: one
// re-queue attempt onto a surviving device, then ErrDeviceLost. Runs in
// the request's executor goroutine, which owns the request exclusively
// here.
func (s *Server) failover(d *device, req *request) {
	req.requeues++
	if req.requeues <= 1 && s.requeue(req, d.name) {
		return
	}
	s.resolveDeviceLost(d.sh, req, d.name)
}

// reroute re-routes requests evacuated from a shrunken shard queue,
// resolving those no shard can take with ErrDeviceLost.
func (s *Server) reroute(reqs []*request, from string) {
	for _, req := range reqs {
		if !s.requeue(req, from) {
			s.resolveDeviceLost(nil, req, from)
		}
	}
}

// requeue routes a request displaced by device churn onto the
// least-loaded shard that can hold its minimal peak, reporting success.
// The admission deadline (and its armed timer) carries over: a request
// whose deadline passes while it waits again is shed normally.
func (s *Server) requeue(req *request, from string) bool {
	req.peak = req.mdl.minPeak
	for _, sh := range s.shardsByDepth(req.peak) {
		sh.mu.Lock()
		if sh.closed ||
			int(sh.poolMax.Load()) < req.peak ||
			sh.q.count >= s.queueCap {
			sh.mu.Unlock()
			continue
		}
		sh.m.requeued++
		s.traceRequeue(sh, req, from)
		s.enqueueLocked(sh, req)
		sh.mu.Unlock()
		return true
	}
	return false
}

// resolveDeviceLost terminally resolves a request stranded by churn. sh
// names the shard whose counter absorbs the loss (nil picks the
// request's last home shard, falling back to the first).
func (s *Server) resolveDeviceLost(sh *shard, req *request, devName string) {
	if sh == nil {
		idx := int(req.shardIdx.Load())
		s.mu.Lock()
		if idx >= 0 && idx < len(s.shards) {
			sh = s.shards[idx]
		} else if len(s.shards) > 0 {
			sh = s.shards[0]
		}
		s.mu.Unlock()
	}
	if sh != nil {
		sh.mu.Lock()
		sh.m.deviceLost++
		sh.mu.Unlock()
	}
	s.traceDeviceLost(req, devName)
	req.resolve(Result{
		Model:     req.mdl.name,
		Device:    devName,
		PeakBytes: req.peak,
		Latency:   time.Since(req.submitted),
	}, fmt.Errorf("%w: device %s", ErrDeviceLost, devName), StateDeviceLost)
}
