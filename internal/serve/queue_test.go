package serve

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// bareServer builds a dispatcherless server plus one device for
// deterministic unit tests of the queue helpers (which run under
// Server.mu in production; these tests are single-goroutine).
func bareServer(t *testing.T, pool, slots int) (*Server, *device) {
	t.Helper()
	led, err := NewLedger(pool)
	if err != nil {
		t.Fatal(err)
	}
	d := &device{name: "dev", ledger: led, slots: slots}
	s := &Server{queueCap: 16, models: make(map[string]*model)}
	s.cond = sync.NewCond(&s.mu)
	s.devices = []*device{d}
	return s, d
}

func queued(id uint64, peak, priority int) *request {
	return &request{
		id: id, peak: peak, priority: priority,
		mdl:    &model{name: "m"},
		doneCh: make(chan struct{}),
	}
}

func TestTakeLockedPriorityAndFIFO(t *testing.T) {
	s, d := bareServer(t, 100, 4)
	a, b, c, e := queued(1, 10, 0), queued(2, 10, 5), queued(3, 10, 5), queued(4, 10, 1)
	s.queue = []*request{a, b, c, e}

	// Highest priority first; FIFO between the two priority-5 entries.
	for i, want := range []*request{b, c, e, a} {
		got := s.takeLocked(d)
		if got != want {
			t.Fatalf("take %d: got id %d, want id %d", i, got.id, want.id)
		}
	}
	if s.takeLocked(d) != nil {
		t.Error("empty queue yielded a request")
	}
}

func TestTakeLockedSkipsOversized(t *testing.T) {
	s, d := bareServer(t, 100, 4)
	big, small := queued(1, 90, 9), queued(2, 30, 0)
	s.queue = []*request{big, small}
	if !d.ledger.TryReserve(99, 40) {
		t.Fatal("setup reservation failed")
	}
	// Only 60 bytes free: the high-priority 90-byte request must not
	// head-of-line block the 30-byte one.
	if got := s.takeLocked(d); got != small {
		t.Fatalf("got id %d, want the small request", got.id)
	}
	if got := s.takeLocked(d); got != nil {
		t.Fatalf("oversized request admitted with 60 free: id %d", got.id)
	}
	d.ledger.Release(99)
	if got := s.takeLocked(d); got != big {
		t.Fatal("freed pool did not admit the big request")
	}
}

func TestTakeLockedRespectsSlots(t *testing.T) {
	s, d := bareServer(t, 100, 1)
	s.queue = []*request{queued(1, 10, 0)}
	d.active = 1
	if s.takeLocked(d) != nil {
		t.Error("slot-saturated device stole work")
	}
	d.active = 0
	if s.takeLocked(d) == nil {
		t.Error("free slot refused work")
	}
}

func TestShedExpiredLocked(t *testing.T) {
	s, _ := bareServer(t, 100, 1)
	now := time.Now()
	fresh := queued(1, 10, 0)
	fresh.deadline = now.Add(time.Hour)
	stale := queued(2, 10, 0)
	stale.deadline = now.Add(-time.Millisecond)
	forever := queued(3, 10, 0) // zero deadline: never shed
	s.queue = []*request{fresh, stale, forever}

	s.shedExpiredLocked(now)
	if len(s.queue) != 2 || s.queue[0] != fresh || s.queue[1] != forever {
		t.Fatalf("queue after shed has %d entries", len(s.queue))
	}
	select {
	case <-stale.doneCh:
	default:
		t.Fatal("shed request not resolved")
	}
	if _, err := (&Ticket{r: stale}).Result(); !errors.Is(err, ErrDeadline) {
		t.Errorf("shed error = %v, want ErrDeadline", err)
	}
	if State(stale.state.Load()) != StateRejected {
		t.Errorf("shed state = %v, want rejected", State(stale.state.Load()))
	}
	if s.m.shedDeadline != 1 {
		t.Errorf("shedDeadline = %d, want 1", s.m.shedDeadline)
	}
}
