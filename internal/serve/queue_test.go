package serve

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// bareShard builds a dispatcherless server with one single-device shard
// for deterministic unit tests of the queue/admission helpers (which run
// under shard.mu in production; these tests are single-goroutine).
func bareShard(t *testing.T, pool, slots int) (*Server, *shard, *device) {
	t.Helper()
	led, err := NewLedger(pool)
	if err != nil {
		t.Fatal(err)
	}
	s := &Server{
		queueCap:     16,
		degradeDepth: 17, // disabled: depth never exceeds queueCap
		models:       make(map[string]*model),
		devNames:     make(map[string]bool),
	}
	sh := &shard{srv: s, index: 0, key: "test"}
	sh.cond = sync.NewCond(&sh.mu)
	s.shards = []*shard{sh}
	d := &device{name: "dev", ledger: led, slots: slots, sh: sh}
	sh.devices = []*device{d}
	sh.updatePoolMaxLocked()
	s.devNames["dev"] = true
	return s, sh, d
}

var queuedSeq uint64

func queued(id uint64, peak, priority int) *request {
	queuedSeq++
	return &request{
		id: id, peak: peak, priority: priority, seq: queuedSeq,
		mdl:    &model{name: "m"},
		doneCh: make(chan struct{}),
	}
}

func TestTakePriorityAndFIFO(t *testing.T) {
	var q prioQueue
	a, b, c, e := queued(1, 10, 0), queued(2, 10, 5), queued(3, 10, 5), queued(4, 10, 1)
	for _, r := range []*request{a, b, c, e} {
		q.push(r)
	}

	// Highest priority first; FIFO between the two priority-5 entries.
	for i, want := range []*request{b, c, e, a} {
		got := q.take(100)
		if got != want {
			t.Fatalf("take %d: got id %d, want id %d", i, got.id, want.id)
		}
	}
	if q.take(100) != nil {
		t.Error("empty queue yielded a request")
	}
	if q.count != 0 || len(q.classes) != 0 {
		t.Errorf("drained queue: count=%d classes=%d", q.count, len(q.classes))
	}
}

func TestTakeSkipsOversized(t *testing.T) {
	var q prioQueue
	big, small := queued(1, 90, 9), queued(2, 30, 0)
	q.push(big)
	q.push(small)
	// Only 60 bytes free: the high-priority 90-byte request must not
	// head-of-line block the 30-byte one.
	if got := q.take(60); got != small {
		t.Fatalf("got id %d, want the small request", got.id)
	}
	if got := q.take(60); got != nil {
		t.Fatalf("oversized request admitted with 60 free: id %d", got.id)
	}
	if got := q.take(100); got != big {
		t.Fatal("freed pool did not admit the big request")
	}
}

func TestTakeFIFOAcrossPeakBuckets(t *testing.T) {
	// Same priority, different peaks: selection across the peak buckets
	// must still be enqueue order, not bucket order.
	var q prioQueue
	first, second, third := queued(1, 50, 0), queued(2, 10, 0), queued(3, 50, 0)
	for _, r := range []*request{first, second, third} {
		q.push(r)
	}
	for i, want := range []*request{first, second, third} {
		if got := q.take(100); got != want {
			t.Fatalf("take %d: got id %d, want id %d", i, got.id, want.id)
		}
	}
}

func TestRingGrowthPreservesFIFOAndRemoval(t *testing.T) {
	var r ring
	var reqs []*request
	for i := 0; i < 5; i++ {
		req := queued(uint64(i), 10, 0)
		reqs = append(reqs, req)
		r.push(req)
	}
	// Pop two, push enough to wrap and grow: absolute positions must
	// survive both.
	for i := 0; i < 2; i++ {
		if got := r.pop(); got != reqs[i] {
			t.Fatalf("pop %d: got id %d", i, got.id)
		}
	}
	for i := 5; i < 30; i++ {
		req := queued(uint64(i), 10, 0)
		reqs = append(reqs, req)
		r.push(req)
	}
	// Remove one from the middle (the cancel path) by its stored position.
	victim := reqs[11]
	if !r.remove(victim) {
		t.Fatal("positional remove failed after growth")
	}
	if r.remove(victim) {
		t.Fatal("double remove succeeded")
	}
	for i := 2; i < 30; i++ {
		if i == 11 {
			continue
		}
		got := r.pop()
		if got != reqs[i] {
			t.Fatalf("pop: got id %d, want id %d", got.id, reqs[i].id)
		}
	}
	if r.pop() != nil {
		t.Error("drained ring yielded a request")
	}
}

func TestShedExpired(t *testing.T) {
	s, sh, _ := bareShard(t, 100, 1)
	now := time.Now()
	fresh := queued(1, 10, 0)
	fresh.deadline = now.Add(time.Hour)
	stale := queued(2, 10, 0)
	stale.deadline = now.Add(-time.Millisecond)
	forever := queued(3, 10, 0) // zero deadline: never shed
	for _, r := range []*request{fresh, stale, forever} {
		s.enqueueLocked(sh, r)
	}

	s.finishShed(now, s.shedExpiredLocked(sh, now, nil))
	if sh.q.count != 2 {
		t.Fatalf("queue after shed has %d entries, want 2", sh.q.count)
	}
	select {
	case <-stale.doneCh:
	default:
		t.Fatal("shed request not resolved")
	}
	if _, err := (&Ticket{r: stale}).Result(); !errors.Is(err, ErrDeadline) {
		t.Errorf("shed error = %v, want ErrDeadline", err)
	}
	if State(stale.state.Load()) != StateRejected {
		t.Errorf("shed state = %v, want rejected", State(stale.state.Load()))
	}
	if sh.m.shedDeadline != 1 {
		t.Errorf("shedDeadline = %d, want 1", sh.m.shedDeadline)
	}
}

// TestShedBoundaryInstantInclusive pins the deadline-boundary bugfix: a
// request whose deadline equals the shed-scan instant is shed in THAT
// scan. The former now.After(deadline) comparison let it survive one
// extra dispatch round.
func TestShedBoundaryInstantInclusive(t *testing.T) {
	s, sh, _ := bareShard(t, 100, 1)
	now := time.Now()
	atBoundary := queued(1, 10, 0)
	atBoundary.deadline = now
	s.enqueueLocked(sh, atBoundary)

	s.finishShed(now, s.shedExpiredLocked(sh, now, nil))
	select {
	case <-atBoundary.doneCh:
	default:
		t.Fatal("request with deadline == scan instant survived the scan")
	}
	if _, err := (&Ticket{r: atBoundary}).Result(); !errors.Is(err, ErrDeadline) {
		t.Errorf("boundary shed error = %v, want ErrDeadline", err)
	}
	if sh.q.count != 0 {
		t.Errorf("queue depth after boundary shed = %d, want 0", sh.q.count)
	}
}

func TestDrainOverEvacuatesByPeak(t *testing.T) {
	var q prioQueue
	small, mid, large := queued(1, 10, 0), queued(2, 40, 3), queued(3, 90, 0)
	for _, r := range []*request{small, mid, large} {
		q.push(r)
	}
	out := q.drainOver(40)
	if len(out) != 1 || out[0] != large {
		t.Fatalf("drainOver(40) evacuated %d requests, want only the 90-byte one", len(out))
	}
	if q.count != 2 {
		t.Errorf("count after partial drain = %d, want 2", q.count)
	}
	out = q.drainOver(0)
	if len(out) != 2 || q.count != 0 {
		t.Fatalf("drainOver(0) evacuated %d, count now %d", len(out), q.count)
	}
}

// TestQueueRemovalReleasesRequests is the regression test for the
// retention bug family: every removal path (dispatcher take, cancel,
// deadline shed) must leave no reference to the removed request in the
// queue's backing storage. The old slice-based queue failed this —
// append(q[:i], q[i+1:]...) and the kept := q[:0] shed filter both left
// stale pointers in the array tail, so a long-lived server pinned every
// request it had ever served. With finalizer accounting, that old code
// collects (close to) none of the removed requests; the ring-based queue
// must collect (close to) all of them while the queue value itself stays
// live.
func TestQueueRemovalReleasesRequests(t *testing.T) {
	const n = 64
	var freed atomic.Int32
	var q prioQueue
	mdl := &model{name: "m"}
	alloc := func(id uint64, prio int, deadline time.Time) *request {
		queuedSeq++
		r := &request{
			id: id, peak: 10, priority: prio, seq: queuedSeq,
			deadline: deadline, mdl: mdl, doneCh: make(chan struct{}),
		}
		runtime.SetFinalizer(r, func(*request) { freed.Add(1) })
		return r
	}

	// Batch 1 leaves via the dispatcher (take), batch 2 via cancel
	// (positional remove), batch 3 via deadline shed.
	for i := 0; i < n; i++ {
		q.push(alloc(uint64(i), 0, time.Time{}))
	}
	cancels := make([]*request, 0, n)
	for i := n; i < 2*n; i++ {
		r := alloc(uint64(i), 1, time.Time{})
		cancels = append(cancels, r)
		q.push(r)
	}
	expired := time.Now().Add(-time.Hour)
	for i := 2 * n; i < 3*n; i++ {
		q.push(alloc(uint64(i), 2, expired))
	}

	q.shed(time.Now(), func(*request) {})
	for _, r := range cancels {
		if !q.remove(r) {
			t.Fatal("cancel-path remove failed")
		}
	}
	cancels = nil
	for q.take(100) != nil {
	}
	if q.count != 0 {
		t.Fatalf("queue not empty after removals: %d", q.count)
	}

	deadline := time.Now().Add(5 * time.Second)
	for freed.Load() < 3*n-4 && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(time.Millisecond)
	}
	// A register/stack root may keep a stray request alive; the bug this
	// pins retained ALL of them, so near-complete collection is the
	// signal.
	if got := freed.Load(); got < 3*n-4 {
		t.Fatalf("only %d of %d removed requests were collected — queue retains freed requests", got, 3*n)
	}
	// The queue itself must still be live when collection happens, or the
	// test would pass vacuously by freeing the whole structure.
	runtime.KeepAlive(&q)
}
