package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/vmcu-project/vmcu/internal/mcu"
	"github.com/vmcu-project/vmcu/internal/obs"
)

// shard is one device group's admission domain. Devices sharing an
// mcu.Profile form a group with its own queue, lock, condition variable,
// and metrics block, so dispatchers of one group never contend with
// another group's submit/dispatch traffic — the whole-fleet Server.mu
// bottleneck is gone. Requests are routed to the least-loaded eligible
// shard at submit time; within a shard, devices still work-steal from the
// shared shard queue.
//
// Lock order: Server.mu before shard.mu; never two shard locks at once.
type shard struct {
	srv     *Server
	index   int    // position in Server.shards; stable (the slice is append-only)
	key     string // group identity: the shared profile's name
	profile mcu.Profile

	// depth mirrors the queued-request count and poolMax the largest
	// usable (neither draining nor dead) device pool, for lock-free
	// routing reads. The authoritative values live under shard.mu; the
	// mirrors are refreshed by every mutation and re-checked under the
	// lock before an enqueue commits.
	depth   atomic.Int64
	poolMax atomic.Int64

	mu       sync.Mutex
	cond     *sync.Cond
	devices  []*device    // guarded by shard.mu
	q        prioQueue    // guarded by shard.mu
	seq      uint64       // enqueue sequence, the FIFO tiebreak; guarded by shard.mu
	degraded bool         // guarded by shard.mu
	closed   bool         // guarded by shard.mu
	m        metricsState // guarded by shard.mu

	// Labeled metric handles for this shard's labelset, resolved once at
	// shard creation (nil no-ops without a tracer). The handles are
	// immutable; the instruments carry their own synchronization.
	hQueueDepth         *obs.Gauge
	hDegraded           *obs.Gauge
	hRequeued           *obs.Counter
	hVariantUpgrades    *obs.Counter
	hDegradedAdmissions *obs.Counter

	// Per-model counter handles for the two per-request counters bumped
	// while holding shard.mu (enqueue's submitted, deadline-shed's
	// outcome). Resolved lazily on first use and cached so the steady
	// state skips With()'s per-call label-key allocation under the lock.
	// Guarded by shard.mu.
	hSubmittedByModel map[*model]*obs.Counter
	hShedByModel      map[*model]*obs.Counter
}

// submittedCounterLocked returns the cached submitted-total handle for
// (model, shard), resolving it on first use. Runs with shard.mu held.
func (sh *shard) submittedCounterLocked(m *model) *obs.Counter {
	if h, ok := sh.hSubmittedByModel[m]; ok {
		return h
	}
	h := sh.srv.ins.submitted.With(m.name, sh.key)
	if sh.hSubmittedByModel == nil {
		sh.hSubmittedByModel = make(map[*model]*obs.Counter)
	}
	sh.hSubmittedByModel[m] = h
	return h
}

// shedCounterLocked returns the cached shed-deadline outcome handle for
// (model, shard). Runs with shard.mu held.
func (sh *shard) shedCounterLocked(m *model) *obs.Counter {
	if h, ok := sh.hShedByModel[m]; ok {
		return h
	}
	h := sh.srv.ins.outcomes.With(m.name, sh.key, outcomeShedDeadline)
	if sh.hShedByModel == nil {
		sh.hShedByModel = make(map[*model]*obs.Counter)
	}
	sh.hShedByModel[m] = h
	return h
}

// updatePoolMaxLocked refreshes the routing mirror of the largest usable
// device pool. Runs with shard.mu held.
func (sh *shard) updatePoolMaxLocked() {
	max := 0
	for _, d := range sh.devices {
		if d.draining || d.dead || d.removed {
			continue
		}
		if c := d.ledger.Capacity(); c > max {
			max = c
		}
	}
	sh.poolMax.Store(int64(max))
}

// noteQueueChangedLocked refreshes the depth mirror and applies the
// degraded-mode hysteresis after any queue mutation: engage when the
// depth reaches degradeDepth, disengage only once it falls to half that,
// so the mode doesn't flap at the threshold. Runs with shard.mu held.
func (sh *shard) noteQueueChangedLocked(degradeDepth int) {
	sh.depth.Store(int64(sh.q.count))
	sh.hQueueDepth.Set(float64(sh.q.count))
	if !sh.degraded && sh.q.count >= degradeDepth {
		sh.degraded = true
		sh.m.degradedEngaged++
		sh.hDegraded.Set(1)
	} else if sh.degraded && sh.q.count <= degradeDepth/2 {
		sh.degraded = false
		sh.hDegraded.Set(0)
	}
}

// dropDeviceLocked removes d from the shard's device list (drain complete
// or crash) and refreshes the pool mirror. Runs with shard.mu held.
func (sh *shard) dropDeviceLocked(d *device) {
	for i, dd := range sh.devices {
		if dd == d {
			sh.devices = append(sh.devices[:i], sh.devices[i+1:]...)
			break
		}
	}
	sh.updatePoolMaxLocked()
}

// shardsByDepth snapshots the shard set ordered by queue depth (shallow
// first), dropping shards whose largest usable pool cannot hold peak.
// The mirrors it reads are advisory; enqueue re-checks under shard.mu.
func (s *Server) shardsByDepth(peak int) []*shard {
	s.mu.Lock()
	shards := make([]*shard, 0, len(s.shards))
	for _, sh := range s.shards {
		if int(sh.poolMax.Load()) >= peak {
			shards = append(shards, sh)
		}
	}
	s.mu.Unlock()
	sort.SliceStable(shards, func(i, j int) bool {
		return shards[i].depth.Load() < shards[j].depth.Load()
	})
	return shards
}

// enqueueLocked commits req to sh's queue: lifecycle state, shard
// routing index, FIFO sequence, high-water mark, degraded-mode check, and
// the dispatcher wake-up. Runs with shard.mu held.
func (s *Server) enqueueLocked(sh *shard, req *request) {
	req.setState(StateQueued)
	req.shardIdx.Store(int32(sh.index))
	sh.seq++
	req.seq = sh.seq
	sh.q.push(req)
	if sh.q.count > sh.m.queueHighWater {
		sh.m.queueHighWater = sh.q.count
	}
	sh.noteQueueChangedLocked(s.degradeDepth)
	sh.cond.Broadcast()
}

// shedExpiredLocked removes every queued request whose admission
// deadline has been reached (inclusive boundary — see prioQueue.shed)
// and appends them to shed, which the caller MUST pass to finishShed
// once the shard lock is released — until then the shed tickets are
// unresolved. Runs with shard.mu held.
func (s *Server) shedExpiredLocked(sh *shard, now time.Time, shed []*request) []*request {
	sh.q.shed(now, func(req *request) {
		sh.m.shedDeadline++
		s.traceShedLocked(sh, req)
		shed = append(shed, req)
	})
	sh.noteQueueChangedLocked(s.degradeDepth)
	return shed
}

// finishShed completes deadline-shed requests after the shard lock is
// released. The shed removed each request from the queue under the lock,
// so the shedding dispatcher is its sole owner here: closing the span
// tree, the flight-recorder flush, and the ticket resolve all run off
// the admission lock — a mass shed on a deep queue no longer serializes
// every dispatcher behind tracer work.
func (s *Server) finishShed(now time.Time, shed []*request) {
	for _, req := range shed {
		s.traceShedFinish(req)
		req.resolve(Result{
			Model:     req.mdl.name,
			PeakBytes: req.peak,
			Latency:   now.Sub(req.submitted),
		}, ErrDeadline, StateRejected)
	}
}
