package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/vmcu-project/vmcu/internal/mcu"
)

// shard is one device group's admission domain. Devices sharing an
// mcu.Profile form a group with its own queue, lock, condition variable,
// and metrics block, so dispatchers of one group never contend with
// another group's submit/dispatch traffic — the whole-fleet Server.mu
// bottleneck is gone. Requests are routed to the least-loaded eligible
// shard at submit time; within a shard, devices still work-steal from the
// shared shard queue.
//
// Lock order: Server.mu before shard.mu; never two shard locks at once.
type shard struct {
	srv     *Server
	index   int    // position in Server.shards; stable (the slice is append-only)
	key     string // group identity: the shared profile's name
	profile mcu.Profile

	// depth mirrors the queued-request count and poolMax the largest
	// usable (neither draining nor dead) device pool, for lock-free
	// routing reads. The authoritative values live under shard.mu; the
	// mirrors are refreshed by every mutation and re-checked under the
	// lock before an enqueue commits.
	depth   atomic.Int64
	poolMax atomic.Int64

	mu       sync.Mutex
	cond     *sync.Cond
	devices  []*device    // guarded by shard.mu
	q        prioQueue    // guarded by shard.mu
	seq      uint64       // enqueue sequence, the FIFO tiebreak; guarded by shard.mu
	degraded bool         // guarded by shard.mu
	closed   bool         // guarded by shard.mu
	m        metricsState // guarded by shard.mu
}

// updatePoolMaxLocked refreshes the routing mirror of the largest usable
// device pool. Runs with shard.mu held.
func (sh *shard) updatePoolMaxLocked() {
	max := 0
	for _, d := range sh.devices {
		if d.draining || d.dead || d.removed {
			continue
		}
		if c := d.ledger.Capacity(); c > max {
			max = c
		}
	}
	sh.poolMax.Store(int64(max))
}

// noteQueueChangedLocked refreshes the depth mirror and applies the
// degraded-mode hysteresis after any queue mutation: engage when the
// depth reaches degradeDepth, disengage only once it falls to half that,
// so the mode doesn't flap at the threshold. Runs with shard.mu held.
func (sh *shard) noteQueueChangedLocked(degradeDepth int) {
	sh.depth.Store(int64(sh.q.count))
	if !sh.degraded && sh.q.count >= degradeDepth {
		sh.degraded = true
		sh.m.degradedEngaged++
	} else if sh.degraded && sh.q.count <= degradeDepth/2 {
		sh.degraded = false
	}
}

// dropDeviceLocked removes d from the shard's device list (drain complete
// or crash) and refreshes the pool mirror. Runs with shard.mu held.
func (sh *shard) dropDeviceLocked(d *device) {
	for i, dd := range sh.devices {
		if dd == d {
			sh.devices = append(sh.devices[:i], sh.devices[i+1:]...)
			break
		}
	}
	sh.updatePoolMaxLocked()
}

// shardsByDepth snapshots the shard set ordered by queue depth (shallow
// first), dropping shards whose largest usable pool cannot hold peak.
// The mirrors it reads are advisory; enqueue re-checks under shard.mu.
func (s *Server) shardsByDepth(peak int) []*shard {
	s.mu.Lock()
	shards := make([]*shard, 0, len(s.shards))
	for _, sh := range s.shards {
		if int(sh.poolMax.Load()) >= peak {
			shards = append(shards, sh)
		}
	}
	s.mu.Unlock()
	sort.SliceStable(shards, func(i, j int) bool {
		return shards[i].depth.Load() < shards[j].depth.Load()
	})
	return shards
}

// enqueueLocked commits req to sh's queue: lifecycle state, shard
// routing index, FIFO sequence, high-water mark, degraded-mode check, and
// the dispatcher wake-up. Runs with shard.mu held.
func (s *Server) enqueueLocked(sh *shard, req *request) {
	req.setState(StateQueued)
	req.shardIdx.Store(int32(sh.index))
	sh.seq++
	req.seq = sh.seq
	sh.q.push(req)
	if sh.q.count > sh.m.queueHighWater {
		sh.m.queueHighWater = sh.q.count
	}
	sh.noteQueueChangedLocked(s.degradeDepth)
	s.traceQueueDepth(sh)
	sh.cond.Broadcast()
}

// shedExpiredLocked sheds every queued request whose admission deadline
// has been reached (inclusive boundary — see prioQueue.shed). Runs with
// shard.mu held.
func (s *Server) shedExpiredLocked(sh *shard, now time.Time) {
	sh.q.shed(now, func(req *request) {
		sh.m.shedDeadline++
		s.traceQueueExit(sh, req, "shed-deadline")
		req.resolve(Result{
			Model:     req.mdl.name,
			PeakBytes: req.peak,
			Latency:   now.Sub(req.submitted),
		}, ErrDeadline, StateRejected)
	})
	sh.noteQueueChangedLocked(s.degradeDepth)
}
