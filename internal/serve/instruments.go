package serve

import (
	"time"

	"github.com/vmcu-project/vmcu/internal/obs"
)

// Labeled serving metrics. The server publishes its live state as obs
// metric families keyed by the fixed label set {model, shard, device,
// outcome} — never request IDs or anything else unbounded — so one
// scrape answers "which model/device/shard is degrading right now":
//
//	vmcu_serve_submitted_total{model,shard}        accepted submissions
//	vmcu_serve_outcomes_total{model,shard,outcome} terminal outcomes
//	vmcu_serve_requeued_total{shard}               churn-displaced absorbs
//	vmcu_serve_variant_upgrades_total{shard}       bigger-peak admissions
//	vmcu_serve_degraded_admissions_total{shard}    degraded-mode admissions
//	vmcu_serve_latency_ms{model}                   sojourn latency, WINDOWED
//	vmcu_serve_queue_depth{shard}                  live queue depth
//	vmcu_serve_degraded{shard}                     degraded mode (0/1)
//	vmcu_serve_pool_used_bytes{device,shard}       ledger bytes, WINDOWED
//	vmcu_serve_pool_capacity_bytes{device,shard}   pool size
//
// Windowed families additionally export trailing-window views
// (`_window{quantile=...}`, `_window_rps`, `_window_max`) so the scrape
// reflects the last ~10 seconds, not since-boot totals.
//
// The per-labelset handles are resolved ONCE, when the labeled thing
// comes into existence — shard handles at shard creation, device
// handles at fleet join, the model's latency histogram at Register —
// and then observed through directly, so the steady-state cost per
// event is one atomic add or one short mutex hold. Only the terminal
// outcome counter resolves its labelset at completion time (the outcome
// isn't known earlier); that is one RWMutex read-lock map hit per
// request lifetime.

// Serving metric family names.
const (
	metricSubmitted          = "vmcu_serve_submitted_total"
	metricOutcomes           = "vmcu_serve_outcomes_total"
	metricRequeued           = "vmcu_serve_requeued_total"
	metricVariantUpgrades    = "vmcu_serve_variant_upgrades_total"
	metricDegradedAdmissions = "vmcu_serve_degraded_admissions_total"
	metricLatencyMs          = "vmcu_serve_latency_ms"
	metricQueueDepth         = "vmcu_serve_queue_depth"
	metricDegraded           = "vmcu_serve_degraded"
	metricPoolUsed           = "vmcu_serve_pool_used_bytes"
	metricPoolCap            = "vmcu_serve_pool_capacity_bytes"
)

// Terminal outcome label values (the "outcome" label of
// vmcu_serve_outcomes_total).
const (
	outcomeDone         = "done"
	outcomeFailed       = "failed"
	outcomeCanceled     = "canceled"
	outcomeShedDeadline = "shed-deadline"
	outcomeQueueFull    = "rejected-queue-full"
	outcomeClosed       = "rejected-closed"
	outcomeNoDevice     = "rejected-no-device"
	outcomeDeviceLost   = "device-lost"
)

// serveInstruments holds the server's labeled metric families. Built
// once at NewServer; with a nil tracer every family is nil and every
// handle resolved from it is the nil no-op instrument, so instrumented
// paths stay free when tracing is off.
type serveInstruments struct {
	submitted          *obs.CounterVec
	outcomes           *obs.CounterVec
	requeued           *obs.CounterVec
	variantUpgrades    *obs.CounterVec
	degradedAdmissions *obs.CounterVec
	latency            *obs.HistogramVec
	queueDepth         *obs.GaugeVec
	degraded           *obs.GaugeVec
	poolUsed           *obs.GaugeVec
	poolCap            *obs.GaugeVec
}

// newServeInstruments registers the serving families on tr (nil-safe:
// a nil tracer yields all-nil families).
func newServeInstruments(tr *obs.Tracer) serveInstruments {
	return serveInstruments{
		submitted: tr.CounterVec(metricSubmitted,
			"Accepted submissions (tickets created).", "model", "shard"),
		outcomes: tr.CounterVec(metricOutcomes,
			"Terminal request outcomes.", "model", "shard", "outcome"),
		requeued: tr.CounterVec(metricRequeued,
			"Churn-displaced requests absorbed by this shard.", "shard"),
		variantUpgrades: tr.CounterVec(metricVariantUpgrades,
			"Admissions whose selected variant's peak exceeded the model's minimum.", "shard"),
		degradedAdmissions: tr.CounterVec(metricDegradedAdmissions,
			"Admissions made while the shard was in degraded mode.", "shard"),
		latency: tr.HistogramVec(metricLatencyMs,
			"Request sojourn latency (submit to done), milliseconds.",
			latencyHistBoundsMs(), obs.WindowOptions{SubWindows: 10, Width: time.Second}, "model"),
		queueDepth: tr.GaugeVec(metricQueueDepth,
			"Live admission-queue depth.", obs.WindowOptions{}, "shard"),
		degraded: tr.GaugeVec(metricDegraded,
			"Degraded-mode state (1 while engaged).", obs.WindowOptions{}, "shard"),
		poolUsed: tr.GaugeVec(metricPoolUsed,
			"Reserved SRAM pool bytes on the device ledger.",
			obs.WindowOptions{SubWindows: 10, Width: time.Second}, "device", "shard"),
		poolCap: tr.GaugeVec(metricPoolCap,
			"SRAM pool capacity of the device ledger.", obs.WindowOptions{}, "device", "shard"),
	}
}

// tracePoolUsed refreshes a device's pool-occupancy gauge from its
// ledger. Called after every reservation/release/abandon; the gauge has
// its own short lock, so callers need not hold shard.mu.
func (d *device) tracePoolUsed() {
	d.hPoolUsed.Set(float64(d.ledger.Used()))
}
