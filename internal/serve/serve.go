// Package serve is the multi-tenant inference serving subsystem: it runs
// many concurrent requests for multiple registered models across a
// simulated fleet of MCU devices, each with a fixed SRAM pool, using the
// whole-network planner's exact per-plan peak as the admission currency.
//
// The pieces, bottom to top:
//
//   - Pool ledger (Ledger). Each device tracks reservations byte-exactly;
//     a request is admitted only when its cached NetworkPlan peak fits the
//     pool's remaining bytes. Co-resident models whose peaks pack together
//     share one SRAM pool; over-commit is impossible by construction
//     (TryReserve refuses reservations past capacity).
//   - Admission queue. Submissions land in one bounded queue shared by the
//     fleet: shed-on-full at submit, strict priority with FIFO within a
//     priority, and per-request admission deadlines (defaulted per model)
//     shed lazily whenever the dispatcher scans.
//   - Work-stealing dispatch. Every device runs one dispatcher goroutine
//     that steals the highest-priority fitting request from the shared
//     queue whenever the device has free pool bytes and a free slot —
//     there is no static model→device assignment, so a small device keeps
//     serving small models while a large one absorbs the big ones.
//   - Async lifecycle. Submit returns a Ticket immediately; the request
//     moves submit → planned → queued → admitted → running → done (or an
//     explicit rejection), every transition observable and every submit
//     guaranteed to resolve. Execution is netplan.Run — the bit-exact
//     whole-network verification executor — through the server's bounded
//     plan cache (ExecDryRun skips the kernels for pure admission-control
//     load tests).
//   - Metrics. A snapshot struct reports throughput, sojourn-latency
//     percentiles, queue depth, per-device pool utilization, and every
//     rejection class, plus the plan cache's hit/miss/eviction counters.
//
// The whole subsystem is safe under -race; the property tests fuzz the
// ledger invariant (admitted peaks never exceed a pool) under concurrent
// submit/cancel.
package serve

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/vmcu-project/vmcu/internal/graph"
	"github.com/vmcu-project/vmcu/internal/mcu"
	"github.com/vmcu-project/vmcu/internal/netplan"
	"github.com/vmcu-project/vmcu/internal/obs"
)

// ExecMode selects what an admitted request executes.
type ExecMode int

const (
	// ExecVerify (the default) runs netplan.Run: the full bit-exact
	// whole-network verification on the admitting device's profile.
	ExecVerify ExecMode = iota
	// ExecDryRun skips the kernels: the request is planned, admitted, and
	// released without executing, exercising only the admission machinery.
	// Load generators use it to stress queue/ledger behaviour at request
	// rates the simulated kernels could never sustain.
	ExecDryRun
)

// DeviceConfig describes one simulated fleet device.
type DeviceConfig struct {
	// Name identifies the device in results and metrics.
	Name string
	// Profile is the simulated MCU the device's requests execute on.
	Profile mcu.Profile
	// PoolBytes is the SRAM pool the ledger partitions; 0 uses the
	// profile's full RAM capacity.
	PoolBytes int
	// Slots caps concurrently running requests on the device; 0 uses
	// DefaultSlots. Memory admission is always the ledger's job — slots
	// only bound compute concurrency.
	Slots int
}

// DefaultSlots is the per-device concurrent-run cap when
// DeviceConfig.Slots is 0.
const DefaultSlots = 4

// DefaultQueueCap is the admission queue bound when Options.QueueCap is 0.
const DefaultQueueCap = 256

// DefaultCacheEntries is the plan-cache LRU bound when Options.CacheEntries
// is 0.
const DefaultCacheEntries = 64

// Options configure a Server.
type Options struct {
	// Devices is the simulated fleet; at least one is required.
	Devices []DeviceConfig
	// QueueCap bounds the admission queue (shed-on-full); 0 uses
	// DefaultQueueCap.
	QueueCap int
	// CacheEntries bounds the server's netplan plan cache (LRU eviction);
	// 0 uses DefaultCacheEntries. Ignored when Cache is set.
	CacheEntries int
	// Cache optionally injects a plan cache (shared with other callers);
	// nil builds a private bounded cache.
	Cache *netplan.Cache
	// Mode selects what admitted requests execute (default ExecVerify).
	Mode ExecMode
	// Tracer opts the server into request-lifecycle tracing and serving
	// metrics (see trace.go for the span tree). nil (the default) is the
	// no-op tracer: every instrumented path reduces to a nil check.
	Tracer *obs.Tracer
}

// ModelConfig carries a registered model's serving defaults.
type ModelConfig struct {
	// Priority is the default admission priority for the model's
	// requests (higher is sooner; SubmitOptions.Priority overrides).
	Priority int
	// MaxQueueWait is the default admission deadline, relative to
	// submission; 0 means no deadline (SubmitOptions.Deadline overrides).
	MaxQueueWait time.Duration
	// Pareto registers the model's whole plan-variant frontier
	// (netplan.Pareto) instead of only the memory-optimal plan: admission
	// then picks the fastest variant that fits the admitting device's
	// remaining pool bytes, trading spare SRAM for estimated latency.
	Pareto bool
	// LatencyBudget is the default on-device inference deadline, in
	// simulated device time: a request whose selected variant's estimated
	// latency exceeds it is still served but accounted as a budget miss
	// (SubmitOptions.LatencyBudget overrides; 0 means none).
	LatencyBudget time.Duration
}

// modelVariant is one admissible schedule of a registered model: the
// pinned scheduler options that re-derive it through the plan cache, its
// reservation peak, and its estimated operation counts (priced per device
// profile at admission).
type modelVariant struct {
	desc  string
	opts  netplan.Options
	peak  int
	stats mcu.Stats
}

// model is one registered model: a backbone plus serving defaults and its
// admissible plan variants, fastest first (estimated cycles under the
// fleet's reference profile), fixed at registration. Plans are
// deterministic, so re-solves after cache eviction reproduce them.
type model struct {
	name     string
	net      graph.Network
	cfg      ModelConfig
	variants []modelVariant
	minPeak  int
}

// pick returns the fastest variant fitting free pool bytes under the
// admitting device's own profile, or nil. Pricing per device matters on a
// heterogeneous fleet: the boards weight the operation classes
// differently (e.g. DivMod is 8× an ALU op on the M4 but 10× on the M7),
// so the registration-time ordering is only a deterministic base order,
// not the per-device ranking.
func (m *model) pick(free int, prof mcu.Profile) *modelVariant {
	var best *modelVariant
	bestCycles := 0.0
	for i := range m.variants {
		v := &m.variants[i]
		if v.peak > free {
			continue
		}
		if c := v.stats.Cycles(prof); best == nil || c < bestCycles ||
			(c == bestCycles && v.peak < best.peak) {
			best, bestCycles = v, c
		}
	}
	return best
}

// device pairs a fleet device with its ledger and dispatch state.
type device struct {
	name    string
	profile mcu.Profile
	ledger  *Ledger
	slots   int
	// active is the running-request count, guarded by Server.mu.
	active int
	// completed counts finished requests, guarded by Server.mu.
	completed uint64
}

// Server coordinates admission and execution across the fleet.
type Server struct {
	mode     ExecMode
	cache    *netplan.Cache
	tr       *obs.Tracer // nil unless Options.Tracer opted in
	devices  []*device
	queueCap int
	maxPool  int
	// refProfile prices variant ordering at registration: the profile of
	// the largest-pool device (per-device pricing happens at admission).
	refProfile mcu.Profile
	started    time.Time

	mu     sync.Mutex
	cond   *sync.Cond
	models map[string]*model // guarded by Server.mu
	queue  []*request        // arrival order; guarded by Server.mu
	nextID uint64            // guarded by Server.mu
	closed bool              // guarded by Server.mu
	m      metricsState      // counter block; guarded by Server.mu

	dispatchers sync.WaitGroup
	execs       sync.WaitGroup
}

// NewServer builds the fleet, starts one dispatcher per device, and
// returns a serving server ready for Register/Submit.
func NewServer(opts Options) (*Server, error) {
	if len(opts.Devices) == 0 {
		return nil, fmt.Errorf("serve: at least one device is required")
	}
	queueCap := opts.QueueCap
	if queueCap <= 0 {
		queueCap = DefaultQueueCap
	}
	cache := opts.Cache
	if cache == nil {
		entries := opts.CacheEntries
		if entries <= 0 {
			entries = DefaultCacheEntries
		}
		cache = netplan.NewCacheWithCap(entries)
	}
	if opts.Tracer != nil {
		// Mirror the plan cache's hit/miss/eviction counters onto the
		// tracer (vmcu_plancache_*), including for an injected shared cache.
		cache.SetTracer(opts.Tracer)
	}
	s := &Server{
		mode:     opts.Mode,
		cache:    cache,
		tr:       opts.Tracer,
		queueCap: queueCap,
		models:   make(map[string]*model),
		started:  time.Now(),
	}
	s.cond = sync.NewCond(&s.mu)
	seen := make(map[string]bool, len(opts.Devices))
	for i, dc := range opts.Devices {
		name := dc.Name
		if name == "" {
			name = fmt.Sprintf("dev%d", i)
		}
		if seen[name] {
			return nil, fmt.Errorf("serve: duplicate device name %q", name)
		}
		seen[name] = true
		pool := dc.PoolBytes
		if pool == 0 {
			pool = dc.Profile.RAMBytes()
		}
		led, err := NewLedger(pool)
		if err != nil {
			return nil, fmt.Errorf("serve: device %s: %w", name, err)
		}
		slots := dc.Slots
		if slots <= 0 {
			slots = DefaultSlots
		}
		d := &device{name: name, profile: dc.Profile, ledger: led, slots: slots}
		s.devices = append(s.devices, d)
		if pool > s.maxPool {
			s.maxPool = pool
			s.refProfile = dc.Profile
		}
	}
	for _, d := range s.devices {
		s.dispatchers.Add(1)
		go s.dispatch(d)
	}
	return s, nil
}

// Register adds a model under name with serving defaults. The model is
// planned immediately (through the plan cache), so registration rejects
// unschedulable networks and models whose minimal peak exceeds every
// device pool (ErrTooLarge) before any request is taken.
//
// With cfg.Pareto the whole plan-variant frontier is registered: every
// non-dominated (peak, estimated cycles, estimated energy) schedule whose
// peak some device pool could ever hold, fastest first. Without it, the
// memory-optimal plan is the model's only variant — the pre-cost-model
// behaviour, still carrying its estimate so latency budgets are accounted
// either way.
func (s *Server) Register(name string, net graph.Network, cfg ModelConfig) error {
	if name == "" {
		return fmt.Errorf("serve: model name must be non-empty")
	}
	variants, err := s.planVariants(net, cfg)
	if err != nil {
		return fmt.Errorf("serve: model %s: %w", name, err)
	}
	minPeak := variants[len(variants)-1].peak
	for _, v := range variants {
		if v.peak < minPeak {
			minPeak = v.peak
		}
	}
	if minPeak > s.maxPool {
		s.mu.Lock()
		s.m.rejectedTooLarge++
		s.mu.Unlock()
		return fmt.Errorf("serve: model %s needs %d bytes, largest pool is %d: %w",
			name, minPeak, s.maxPool, ErrTooLarge)
	}
	// Variants no pool could ever admit are unreachable; drop them.
	kept := variants[:0]
	for _, v := range variants {
		if v.peak <= s.maxPool {
			kept = append(kept, v)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, dup := s.models[name]; dup {
		return fmt.Errorf("serve: model %s already registered", name)
	}
	s.models[name] = &model{name: name, net: net, cfg: cfg, variants: kept, minPeak: minPeak}
	return nil
}

// planVariants solves a model's admissible schedules, fastest first under
// the fleet's reference profile (the largest-pool device).
func (s *Server) planVariants(net graph.Network, cfg ModelConfig) ([]modelVariant, error) {
	if !cfg.Pareto {
		np, _, err := s.cache.Plan(net, netplan.Options{Tracer: s.tr})
		if err != nil {
			return nil, err
		}
		est, err := netplan.EstimatePlan(s.refProfile, net, np)
		if err != nil {
			return nil, err
		}
		return []modelVariant{{desc: "min-peak", opts: netplan.Options{}, peak: np.PeakBytes, stats: est.Total}}, nil
	}
	frontier, err := netplan.Pareto(s.refProfile, net, netplan.Options{Tracer: s.tr})
	if err != nil {
		return nil, err
	}
	variants := make([]modelVariant, 0, len(frontier))
	for _, v := range frontier {
		// Warm the serving cache under the variant's pinned options so the
		// first admission under any variant executes against a memoized
		// plan instead of paying a whole-network re-solve on the service
		// path (Pareto's own solves bypass the cache).
		if _, _, err := s.cache.Plan(net, v.Opts); err != nil {
			return nil, err
		}
		variants = append(variants, modelVariant{
			desc:  v.Desc,
			opts:  v.Opts,
			peak:  v.Plan.PeakBytes,
			stats: v.Est.Total,
		})
	}
	sort.Slice(variants, func(i, j int) bool {
		ci, cj := variants[i].stats.Cycles(s.refProfile), variants[j].stats.Cycles(s.refProfile)
		if ci != cj {
			return ci < cj
		}
		return variants[i].peak < variants[j].peak
	})
	return variants, nil
}

// Submit enqueues one inference request for a registered model and returns
// its Ticket. Rejections at submit time — unknown model, closed server,
// full queue — return an error and no ticket; every returned ticket is
// guaranteed to resolve (done, deadline-shed, or canceled).
func (s *Server) Submit(modelName string, opts SubmitOptions) (*Ticket, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	mdl, ok := s.models[modelName]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, modelName)
	}

	req := &request{
		srv:       s,
		mdl:       mdl,
		seed:      opts.Seed,
		submitted: time.Now(),
		doneCh:    make(chan struct{}),
	}
	req.setState(StateSubmitted)
	submitSpan := s.traceSubmit(req, modelName)

	// The plans were resolved through the cache at registration and plans
	// are deterministic, so the model's stored variant peaks ARE the
	// request's admission currency — no re-solve on the submit path (the
	// executor re-plans through the cache, off this path, if the entry was
	// evicted). Registration also guarantees the minimal peak fits some
	// pool. The peak starts at the minimal variant's (the queue fit
	// check); the dispatcher rewrites it to the selected variant's.
	req.peak = mdl.minPeak
	req.setState(StatePlanned)

	req.priority = opts.Priority
	if req.priority == 0 {
		req.priority = mdl.cfg.Priority
	}
	req.latencyBudget = opts.LatencyBudget
	if req.latencyBudget == 0 {
		req.latencyBudget = mdl.cfg.LatencyBudget
	}
	req.deadline = opts.Deadline
	if req.deadline.IsZero() && mdl.cfg.MaxQueueWait > 0 {
		req.deadline = req.submitted.Add(mdl.cfg.MaxQueueWait)
	}
	if !req.deadline.IsZero() {
		// Wake the dispatchers just past the deadline so an otherwise idle
		// queue still sheds the request promptly. Armed before the request
		// is visible to any dispatcher so resolve() can stop it race-free.
		req.timer = time.AfterFunc(time.Until(req.deadline)+time.Millisecond, s.kick)
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		req.stopTimer()
		s.traceSubmitRejected(req, submitSpan, "rejected-closed")
		return nil, ErrClosed
	}
	if len(s.queue) >= s.queueCap {
		s.m.rejectedFull++
		s.mu.Unlock()
		req.stopTimer()
		s.traceSubmitRejected(req, submitSpan, "rejected-queue-full")
		return nil, fmt.Errorf("%w (cap %d)", ErrQueueFull, s.queueCap)
	}
	s.nextID++
	req.id = s.nextID
	req.setState(StateQueued)
	s.queue = append(s.queue, req)
	if len(s.queue) > s.m.queueHighWater {
		s.m.queueHighWater = len(s.queue)
	}
	s.m.submitted++
	s.traceEnqueued(req, submitSpan)
	s.cond.Broadcast()
	s.mu.Unlock()
	return &Ticket{r: req}, nil
}

// kick wakes every dispatcher to rescan the queue (deadline timers).
func (s *Server) kick() {
	s.mu.Lock()
	s.cond.Broadcast()
	s.mu.Unlock()
}

// dispatch is one device's work-stealing loop: shed expired requests,
// steal the best fitting one, reserve its peak, and hand it to an
// executor goroutine. Exits when the server is closed and the queue is
// fully drained.
func (s *Server) dispatch(d *device) {
	defer s.dispatchers.Done()
	for {
		s.mu.Lock()
		var req *request
		for {
			s.shedExpiredLocked(time.Now())
			req = s.takeLocked(d)
			if req != nil || (s.closed && len(s.queue) == 0) {
				break
			}
			s.cond.Wait()
		}
		if req == nil {
			s.mu.Unlock()
			return
		}
		// Variant selection: the fastest registered schedule (priced under
		// this device's profile) whose peak fits the device's free pool
		// right now. takeLocked admitted on the minimal peak, so at least
		// that variant always fits; a device with spare bytes upgrades to
		// a faster, larger-peak plan.
		v := req.mdl.pick(d.ledger.Free(), d.profile)
		if v == nil {
			// A concurrent release shrank nothing — free only grows — so
			// this cannot happen; requeue defensively.
			s.queue = append([]*request{req}, s.queue...)
			s.mu.Unlock()
			continue
		}
		req.variant = v
		req.peak = v.peak
		req.estLatency = time.Duration(v.stats.LatencySeconds(d.profile) * float64(time.Second))
		req.metBudget = req.latencyBudget == 0 || req.estLatency <= req.latencyBudget
		// Only this dispatcher reserves on d, and the variant was chosen
		// against the free bytes under s.mu, so the reservation cannot
		// fail (releases only grow the free space). Requeue defensively
		// all the same — before the admission metrics, so a retry cannot
		// double-count them.
		if !d.ledger.TryReserve(req.id, req.peak) {
			req.peak = req.mdl.minPeak
			s.queue = append([]*request{req}, s.queue...)
			s.mu.Unlock()
			continue
		}
		s.traceAdmit(d, req)
		if v.peak > req.mdl.minPeak {
			s.m.variantUpgrades++
		}
		if req.latencyBudget > 0 {
			if req.metBudget {
				s.m.latencyBudgetMet++
			} else {
				s.m.latencyBudgetMissed++
			}
		}
		req.admittedAt = time.Now()
		req.setState(StateAdmitted)
		d.active++
		s.execs.Add(1)
		go s.execute(d, req)
		s.mu.Unlock()
	}
}

// execute runs one admitted request on its device and resolves the ticket.
func (s *Server) execute(d *device, req *request) {
	defer s.execs.Done()
	req.setState(StateRunning)
	execSpan := s.traceExecuteStart(d, req)
	var run *netplan.RunResult
	var err error
	switch s.mode {
	case ExecDryRun:
		// Admission-control stress mode: hold the reservation across a
		// scheduling point so residency windows genuinely overlap.
		runtime.Gosched()
	default:
		run, err = netplan.RunTraced(d.profile, req.mdl.net, req.seed, req.variant.opts, s.cache,
			s.tr, execSpan.ID(), execSpan.TraceID(), d.name)
		if err == nil && !run.AllVerified {
			err = fmt.Errorf("serve: %s on %s: output verification failed", req.mdl.name, d.name)
		}
		if err == nil && run.Violations != 0 {
			err = fmt.Errorf("serve: %s on %s: %d memory-safety violations", req.mdl.name, d.name, run.Violations)
		}
	}
	if run != nil && execSpan != nil {
		cycles := 0.0
		for _, r := range run.Modules {
			cycles += r.Stats.Cycles(d.profile)
		}
		for _, r := range run.Seams {
			cycles += r.Stats.Cycles(d.profile)
		}
		execSpan.SetCycles(0, cycles)
		execSpan.Attr(obs.Float("device_cycles", cycles))
	}
	execSpan.End()
	freed := d.ledger.Release(req.id)
	now := time.Now()

	s.mu.Lock()
	d.active--
	if freed != req.peak && err == nil {
		err = fmt.Errorf("serve: ledger released %d bytes for request %d, reserved %d", freed, req.id, req.peak)
	}
	if err != nil {
		s.m.failed++
	} else {
		s.m.completed++
		d.completed++
	}
	s.m.sampleLatency(now.Sub(req.submitted))
	s.cond.Broadcast()
	s.mu.Unlock()

	// Close the span tree before resolving: a caller that waits on the
	// ticket and then snapshots the tracer sees the whole tree.
	s.traceComplete(d, req, freed, now.Sub(req.submitted), err)
	req.resolve(Result{
		Model:            req.mdl.name,
		Device:           d.name,
		PeakBytes:        req.peak,
		Variant:          req.variant.desc,
		EstimatedLatency: req.estLatency,
		MetLatencyBudget: req.metBudget,
		Run:              run,
		QueueWait:        req.admittedAt.Sub(req.submitted),
		Latency:          now.Sub(req.submitted),
	}, err, StateDone)
}

// cancel implements Ticket.Cancel: remove the request from the queue if it
// is still there.
func (s *Server) cancel(r *request) bool {
	s.mu.Lock()
	for i, q := range s.queue {
		if q == r {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			s.m.canceled++
			s.traceQueueExit(r, "canceled")
			s.cond.Broadcast()
			s.mu.Unlock()
			r.resolve(Result{
				Model:     r.mdl.name,
				PeakBytes: r.peak,
				Latency:   time.Since(r.submitted),
			}, ErrCanceled, StateCanceled)
			return true
		}
	}
	s.mu.Unlock()
	return false
}

// Close drains the server gracefully: no new submissions are accepted,
// every queued request is still admitted (or shed by its deadline), and
// Close returns once all running requests have resolved. Safe to call
// more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.dispatchers.Wait()
	s.execs.Wait()
	return nil
}
