// Package serve is the multi-tenant inference serving subsystem: it runs
// many concurrent requests for multiple registered models across a
// simulated fleet of MCU devices, each with a fixed SRAM pool, using the
// whole-network planner's exact per-plan peak as the admission currency.
//
// The pieces, bottom to top:
//
//   - Pool ledger (Ledger). Each device tracks reservations byte-exactly;
//     a request is admitted only when its cached NetworkPlan peak fits the
//     pool's remaining bytes. Co-resident models whose peaks pack together
//     share one SRAM pool; over-commit is impossible by construction
//     (TryReserve refuses reservations past capacity).
//   - Sharded admission. Devices sharing an mcu.Profile form a device
//     group (shard) with its own bounded priority queue, lock, and
//     metrics, so dispatchers never contend across groups. Submissions
//     are routed to the least-loaded shard whose largest usable pool fits
//     the request: shed-on-full at submit, strict priority with FIFO
//     within a priority (per-priority FIFO rings indexed by peak — see
//     queue.go), and per-request admission deadlines (defaulted per
//     model) shed lazily whenever a dispatcher scans.
//   - Work-stealing dispatch. Every device runs one dispatcher goroutine
//     that steals the highest-priority fitting request from its shard's
//     queue whenever the device has free pool bytes and a free slot —
//     there is no static model→device assignment within a group.
//   - Device churn. AddDevice grows the fleet live; RemoveDevice drains a
//     device gracefully; CrashDevice simulates failure mid-request: the
//     dead device's ledger is abandoned (bytes provably released), its
//     in-flight requests are re-queued once onto surviving devices or
//     resolved with ErrDeviceLost, and queued requests no surviving pool
//     can hold are evacuated and re-routed.
//   - Degraded mode. When a shard's queue depth crosses a threshold
//     (Options.DegradeDepth), admission switches from the fastest-fitting
//     Pareto variant to the smallest-peak one — a saturated group packs
//     more co-residents instead of shedding — with hysteresis so the mode
//     doesn't flap.
//   - Async lifecycle. Submit returns a Ticket immediately; the request
//     moves submit → planned → queued → admitted → running → done (or an
//     explicit rejection), every transition observable and every submit
//     guaranteed to resolve — including submit-time rejections, whose
//     tickets-never-issued requests still resolve to a terminal state.
//     Execution is netplan.Run — the bit-exact whole-network verification
//     executor — through the server's bounded plan cache (ExecDryRun
//     skips the kernels for pure admission-control load tests).
//   - Metrics. A snapshot struct reports throughput, sojourn-latency
//     percentiles, per-shard queue state, per-device pool utilization,
//     churn and degraded-mode counters, and every rejection class, plus
//     the plan cache's hit/miss/eviction counters.
//
// The whole subsystem is safe under -race; the property tests fuzz the
// ledger invariant (admitted peaks never exceed a pool) under concurrent
// submit/cancel, and the churn acceptance test crashes devices
// mid-request under -race.
package serve

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/vmcu-project/vmcu/internal/graph"
	"github.com/vmcu-project/vmcu/internal/mcu"
	"github.com/vmcu-project/vmcu/internal/netplan"
	"github.com/vmcu-project/vmcu/internal/obs"
)

// ExecMode selects what an admitted request executes.
type ExecMode int

const (
	// ExecVerify (the default) runs netplan.Run: the full bit-exact
	// whole-network verification on the admitting device's profile.
	ExecVerify ExecMode = iota
	// ExecDryRun skips the kernels: the request is planned, admitted, and
	// released without executing, exercising only the admission machinery.
	// Load generators use it to stress queue/ledger behaviour at request
	// rates the simulated kernels could never sustain.
	ExecDryRun
)

// DeviceConfig describes one simulated fleet device.
type DeviceConfig struct {
	// Name identifies the device in results and metrics.
	Name string
	// Profile is the simulated MCU the device's requests execute on.
	// Devices with the same Profile share an admission shard.
	Profile mcu.Profile
	// PoolBytes is the SRAM pool the ledger partitions; 0 uses the
	// profile's full RAM capacity.
	PoolBytes int
	// Slots caps concurrently running requests on the device; 0 uses
	// DefaultSlots. Memory admission is always the ledger's job — slots
	// only bound compute concurrency.
	Slots int
}

// DefaultSlots is the per-device concurrent-run cap when
// DeviceConfig.Slots is 0.
const DefaultSlots = 4

// DefaultQueueCap is the per-shard admission queue bound when
// Options.QueueCap is 0.
const DefaultQueueCap = 256

// DefaultCacheEntries is the plan-cache LRU bound when Options.CacheEntries
// is 0.
const DefaultCacheEntries = 64

// Options configure a Server.
type Options struct {
	// Devices is the simulated fleet; at least one is required. Devices
	// sharing an mcu.Profile form one admission shard.
	Devices []DeviceConfig
	// QueueCap bounds each shard's admission queue (shed-on-full); 0 uses
	// DefaultQueueCap.
	QueueCap int
	// DegradeDepth is the per-shard queue depth at which degraded mode
	// engages: admission switches from the fastest-fitting plan variant
	// to the smallest-peak one, packing more co-residents instead of
	// shedding. It disengages once the depth falls to half the threshold
	// (hysteresis). 0 uses three quarters of QueueCap; negative disables
	// degraded mode.
	DegradeDepth int
	// CacheEntries bounds the server's netplan plan cache (LRU eviction);
	// 0 uses DefaultCacheEntries. Ignored when Cache is set.
	CacheEntries int
	// Cache optionally injects a plan cache (shared with other callers);
	// nil builds a private bounded cache.
	Cache *netplan.Cache
	// Mode selects what admitted requests execute (default ExecVerify).
	Mode ExecMode
	// Tracer opts the server into request-lifecycle tracing and serving
	// metrics (see trace.go for the span tree). nil (the default) is the
	// no-op tracer: every instrumented path reduces to a nil check.
	Tracer *obs.Tracer
}

// ModelConfig carries a registered model's serving defaults.
type ModelConfig struct {
	// Priority is the default admission priority for the model's
	// requests (higher is sooner; SubmitOptions.Priority overrides).
	Priority int
	// MaxQueueWait is the default admission deadline, relative to
	// submission; 0 means no deadline (SubmitOptions.Deadline overrides).
	MaxQueueWait time.Duration
	// Pareto registers the model's whole plan-variant frontier
	// (netplan.Pareto) instead of only the memory-optimal plan: admission
	// then picks the fastest variant that fits the admitting device's
	// remaining pool bytes, trading spare SRAM for estimated latency (or
	// the smallest-peak variant while the shard is degraded).
	Pareto bool
	// LatencyBudget is the default on-device inference deadline, in
	// simulated device time: a request whose selected variant's estimated
	// latency exceeds it is still served but accounted as a budget miss
	// (SubmitOptions.LatencyBudget overrides; 0 means none).
	LatencyBudget time.Duration
}

// modelVariant is one admissible schedule of a registered model: the
// pinned scheduler options that re-derive it through the plan cache, its
// reservation peak, and its estimated operation counts (priced per device
// profile at admission).
type modelVariant struct {
	desc  string
	opts  netplan.Options
	peak  int
	stats mcu.Stats
}

// model is one registered model: a backbone plus serving defaults and its
// admissible plan variants, fastest first (estimated cycles under the
// fleet's reference profile), fixed at registration. Plans are
// deterministic, so re-solves after cache eviction reproduce them.
type model struct {
	name     string
	net      graph.Network
	cfg      ModelConfig
	variants []modelVariant
	minPeak  int
	// hLatency is the model's labeled sojourn-latency histogram handle,
	// resolved once at registration (nil no-op without a tracer).
	hLatency *obs.Histogram
	// hQueueFull and hNoDevice are the submit-rejection outcome handles,
	// resolved at registration: at the saturation cliff nearly every
	// submission bounces with one of these two outcomes, so the terminal
	// edge must not pay even a cached-map hash for them.
	hQueueFull *obs.Counter
	hNoDevice  *obs.Counter
}

// pick returns the fastest variant fitting free pool bytes under the
// admitting device's own profile, or nil. Pricing per device matters on a
// heterogeneous fleet: the boards weight the operation classes
// differently (e.g. DivMod is 8× an ALU op on the M4 but 10× on the M7),
// so the registration-time ordering is only a deterministic base order,
// not the per-device ranking.
func (m *model) pick(free int, prof mcu.Profile) *modelVariant {
	var best *modelVariant
	bestCycles := 0.0
	for i := range m.variants {
		v := &m.variants[i]
		if v.peak > free {
			continue
		}
		if c := v.stats.Cycles(prof); best == nil || c < bestCycles ||
			(c == bestCycles && v.peak < best.peak) {
			best, bestCycles = v, c
		}
	}
	return best
}

// pickSmallest returns the smallest-peak variant fitting free pool bytes,
// or nil — degraded-mode admission: a saturated shard trades latency for
// maximum co-residency instead of shedding.
func (m *model) pickSmallest(free int) *modelVariant {
	var best *modelVariant
	for i := range m.variants {
		v := &m.variants[i]
		if v.peak > free {
			continue
		}
		if best == nil || v.peak < best.peak {
			best = v
		}
	}
	return best
}

// device pairs a fleet device with its ledger and dispatch state.
type device struct {
	name    string
	profile mcu.Profile
	ledger  *Ledger
	slots   int
	sh      *shard // home shard; immutable after creation
	// active is the running-request count, guarded by shard.mu.
	active int
	// completed counts finished requests, guarded by shard.mu.
	completed uint64
	// Churn state, guarded by shard.mu: draining refuses new admissions
	// while existing work finishes (RemoveDevice); dead marks a simulated
	// crash (CrashDevice); removed marks the drain's completion.
	draining bool
	dead     bool
	removed  bool
	// Labeled gauge handles for the device's pool occupancy and capacity,
	// resolved once at fleet join (nil no-ops without a tracer).
	hPoolUsed *obs.Gauge
	hPoolCap  *obs.Gauge
}

// Server coordinates admission and execution across the fleet.
type Server struct {
	mode         ExecMode
	cache        *netplan.Cache
	tr           *obs.Tracer      // nil unless Options.Tracer opted in
	ins          serveInstruments // labeled metric families; all-nil without a tracer
	queueCap     int              // per shard
	degradeDepth int              // per-shard degraded-mode engage threshold
	started      time.Time

	nextID atomic.Uint64 // request id allocator

	// outcomeHandles caches resolve-once outcome-counter handles for the
	// per-request terminal sites in trace.go, copy-on-write and keyed by
	// (model, shard, outcome) as comparable values: the hit path is one
	// atomic load plus a map read — no label-key join, no allocation.
	// outcomeMu serializes creators only.
	outcomeHandles atomic.Pointer[map[outcomeKey]*obs.Counter]
	outcomeMu      sync.Mutex

	mu               sync.Mutex
	models           map[string]*model // guarded by Server.mu
	shards           []*shard          // append-only; membership guarded by Server.mu
	devNames         map[string]bool   // live device names; guarded by Server.mu
	devSeq           int               // default device-name counter; guarded by Server.mu
	maxPool          int               // largest pool ever seen; guarded by Server.mu
	refProfile       mcu.Profile       // registration pricing profile; guarded by Server.mu
	closed           bool              // guarded by Server.mu
	rejectedFull     uint64            // guarded by Server.mu
	rejectedTooLarge uint64            // guarded by Server.mu

	// testExecGate, when set (tests only, before any Submit), is called at
	// the top of every execution so churn tests can hold a request
	// mid-flight deterministically.
	testExecGate func(*device, *request)

	dispatchers sync.WaitGroup
	execs       sync.WaitGroup
}

// NewServer builds the fleet, starts one dispatcher per device, and
// returns a serving server ready for Register/Submit.
func NewServer(opts Options) (*Server, error) {
	if len(opts.Devices) == 0 {
		return nil, fmt.Errorf("serve: at least one device is required")
	}
	queueCap := opts.QueueCap
	if queueCap <= 0 {
		queueCap = DefaultQueueCap
	}
	degrade := opts.DegradeDepth
	switch {
	case degrade == 0:
		degrade = queueCap * 3 / 4
		if degrade < 1 {
			degrade = 1
		}
	case degrade < 0:
		// Disabled: the queue depth never exceeds queueCap, so the
		// threshold is unreachable.
		degrade = queueCap + 1
	}
	cache := opts.Cache
	if cache == nil {
		entries := opts.CacheEntries
		if entries <= 0 {
			entries = DefaultCacheEntries
		}
		cache = netplan.NewCacheWithCap(entries)
	}
	if opts.Tracer != nil {
		// Mirror the plan cache's hit/miss/eviction counters onto the
		// tracer (vmcu_plancache_*), including for an injected shared cache.
		cache.SetTracer(opts.Tracer)
	}
	s := &Server{
		mode:         opts.Mode,
		cache:        cache,
		tr:           opts.Tracer,
		queueCap:     queueCap,
		degradeDepth: degrade,
		models:       make(map[string]*model),
		devNames:     make(map[string]bool),
		started:      time.Now(),
	}
	// Register the labeled families before any shard or device exists:
	// addDeviceLocked resolves per-shard and per-device handles from them.
	s.ins = newServeInstruments(opts.Tracer)
	var devices []*device
	s.mu.Lock()
	for _, dc := range opts.Devices {
		d, err := s.addDeviceLocked(dc)
		if err != nil {
			s.mu.Unlock()
			return nil, err
		}
		devices = append(devices, d)
	}
	s.mu.Unlock()
	for _, d := range devices {
		go s.dispatch(d)
	}
	return s, nil
}

// Register adds a model under name with serving defaults. The model is
// planned immediately (through the plan cache), so registration rejects
// unschedulable networks and models whose minimal peak exceeds every
// device pool (ErrTooLarge) before any request is taken.
//
// With cfg.Pareto the whole plan-variant frontier is registered: every
// non-dominated (peak, estimated cycles, estimated energy) schedule whose
// peak some device pool could ever hold, fastest first. Without it, the
// memory-optimal plan is the model's only variant — the pre-cost-model
// behaviour, still carrying its estimate so latency budgets are accounted
// either way.
func (s *Server) Register(name string, net graph.Network, cfg ModelConfig) error {
	if name == "" {
		return fmt.Errorf("serve: model name must be non-empty")
	}
	variants, err := s.planVariants(net, cfg)
	if err != nil {
		return fmt.Errorf("serve: model %s: %w", name, err)
	}
	minPeak := variants[len(variants)-1].peak
	for _, v := range variants {
		if v.peak < minPeak {
			minPeak = v.peak
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if minPeak > s.maxPool {
		s.rejectedTooLarge++
		return fmt.Errorf("serve: model %s needs %d bytes, largest pool is %d: %w",
			name, minPeak, s.maxPool, ErrTooLarge)
	}
	// Variants no pool could ever admit are unreachable; drop them.
	kept := variants[:0]
	for _, v := range variants {
		if v.peak <= s.maxPool {
			kept = append(kept, v)
		}
	}
	if s.closed {
		return ErrClosed
	}
	if _, dup := s.models[name]; dup {
		return fmt.Errorf("serve: model %s already registered", name)
	}
	s.models[name] = &model{
		name: name, net: net, cfg: cfg, variants: kept, minPeak: minPeak,
		hLatency:   s.ins.latency.With(name),
		hQueueFull: s.ins.outcomes.With(name, "", outcomeQueueFull),
		hNoDevice:  s.ins.outcomes.With(name, "", outcomeNoDevice),
	}
	return nil
}

// planVariants solves a model's admissible schedules, fastest first under
// the fleet's reference profile (the largest-pool device).
func (s *Server) planVariants(net graph.Network, cfg ModelConfig) ([]modelVariant, error) {
	s.mu.Lock()
	ref := s.refProfile
	s.mu.Unlock()
	if !cfg.Pareto {
		np, _, err := s.cache.Plan(net, netplan.Options{Tracer: s.tr})
		if err != nil {
			return nil, err
		}
		est, err := netplan.EstimatePlan(ref, net, np)
		if err != nil {
			return nil, err
		}
		return []modelVariant{{desc: "min-peak", opts: netplan.Options{}, peak: np.PeakBytes, stats: est.Total}}, nil
	}
	frontier, err := netplan.Pareto(ref, net, netplan.Options{Tracer: s.tr})
	if err != nil {
		return nil, err
	}
	variants := make([]modelVariant, 0, len(frontier))
	for _, v := range frontier {
		// Warm the serving cache under the variant's pinned options so the
		// first admission under any variant executes against a memoized
		// plan instead of paying a whole-network re-solve on the service
		// path (Pareto's own solves bypass the cache).
		if _, _, err := s.cache.Plan(net, v.Opts); err != nil {
			return nil, err
		}
		variants = append(variants, modelVariant{
			desc:  v.Desc,
			opts:  v.Opts,
			peak:  v.Plan.PeakBytes,
			stats: v.Est.Total,
		})
	}
	sort.Slice(variants, func(i, j int) bool {
		ci, cj := variants[i].stats.Cycles(ref), variants[j].stats.Cycles(ref)
		if ci != cj {
			return ci < cj
		}
		return variants[i].peak < variants[j].peak
	})
	return variants, nil
}

// Submit enqueues one inference request for a registered model and returns
// its Ticket. Rejections at submit time — unknown model, closed server,
// full queues, no usable device — return an error and no ticket; the
// underlying request still resolves to a terminal state so its trace tree
// closes. Every returned ticket is guaranteed to resolve (done,
// deadline-shed, canceled, or device-lost).
func (s *Server) Submit(modelName string, opts SubmitOptions) (*Ticket, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	mdl, ok := s.models[modelName]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, modelName)
	}

	req := &request{
		srv:       s,
		mdl:       mdl,
		seed:      opts.Seed,
		submitted: time.Now(),
		doneCh:    make(chan struct{}),
	}
	req.shardIdx.Store(-1)
	req.id = s.nextID.Add(1)
	req.setState(StateSubmitted)
	submitSpan := s.traceSubmit(req, modelName)

	// The plans were resolved through the cache at registration and plans
	// are deterministic, so the model's stored variant peaks ARE the
	// request's admission currency — no re-solve on the submit path (the
	// executor re-plans through the cache, off this path, if the entry was
	// evicted). The peak starts at the minimal variant's (the queue fit
	// check); the dispatcher rewrites it to the selected variant's.
	req.peak = mdl.minPeak
	req.setState(StatePlanned)

	req.priority = opts.Priority
	if req.priority == 0 {
		req.priority = mdl.cfg.Priority
	}
	req.latencyBudget = opts.LatencyBudget
	if req.latencyBudget == 0 {
		req.latencyBudget = mdl.cfg.LatencyBudget
	}
	req.deadline = opts.Deadline
	if req.deadline.IsZero() && mdl.cfg.MaxQueueWait > 0 {
		req.deadline = req.submitted.Add(mdl.cfg.MaxQueueWait)
	}
	if !req.deadline.IsZero() {
		// Wake the home shard's dispatchers just past the deadline so an
		// otherwise idle queue still sheds the request promptly. Armed
		// before the request is visible to any dispatcher so resolve() can
		// stop it race-free; kick re-reads the routing index, so a request
		// re-queued after a crash still wakes the right shard.
		req.timer = time.AfterFunc(time.Until(req.deadline)+time.Millisecond, func() { s.kick(req) })
	}

	// Route to the least-loaded shard whose largest usable pool fits the
	// request, re-validating under each shard lock.
	sawFull, sawClosed := false, false
	for _, sh := range s.shardsByDepth(req.peak) {
		sh.mu.Lock()
		if sh.closed {
			sawClosed = true
			sh.mu.Unlock()
			continue
		}
		if int(sh.poolMax.Load()) < req.peak {
			sh.mu.Unlock()
			continue
		}
		if sh.q.count >= s.queueCap {
			sawFull = true
			sh.mu.Unlock()
			continue
		}
		sh.m.submitted++
		s.traceEnqueued(sh, req, submitSpan)
		s.enqueueLocked(sh, req)
		sh.mu.Unlock()
		return &Ticket{r: req}, nil
	}

	// Rejected at submit time: no ticket is issued, but the request still
	// resolves to a terminal state — previously these paths stopped the
	// timer and dropped a forever-StatePlanned request with an open span
	// tree.
	req.stopTimer()
	res := Result{Model: mdl.name, PeakBytes: req.peak}
	switch {
	case sawFull:
		s.mu.Lock()
		s.rejectedFull++
		s.mu.Unlock()
		s.traceSubmitRejected(req, submitSpan, "rejected-queue-full")
		err := fmt.Errorf("%w (cap %d per shard)", ErrQueueFull, s.queueCap)
		req.resolve(res, err, StateRejected)
		return nil, err
	case sawClosed:
		s.traceSubmitRejected(req, submitSpan, "rejected-closed")
		req.resolve(res, ErrClosed, StateRejected)
		return nil, ErrClosed
	default:
		s.traceSubmitRejected(req, submitSpan, "rejected-no-device")
		err := fmt.Errorf("%w: no usable device pool fits model %s (needs %d bytes)",
			ErrDeviceLost, mdl.name, req.peak)
		req.resolve(res, err, StateRejected)
		return nil, err
	}
}

// kick wakes the dispatchers of a request's current home shard (deadline
// timers). A request not yet routed — or whose shard index is stale —
// falls back to waking every shard.
func (s *Server) kick(req *request) {
	idx := int(req.shardIdx.Load())
	s.mu.Lock()
	var targets []*shard
	if idx >= 0 && idx < len(s.shards) {
		targets = []*shard{s.shards[idx]}
	} else {
		targets = append(targets, s.shards...)
	}
	s.mu.Unlock()
	for _, sh := range targets {
		sh.mu.Lock()
		sh.cond.Broadcast()
		sh.mu.Unlock()
	}
}

// dispatch is one device's work-stealing loop over its shard's queue:
// shed expired requests, steal the best fitting one, reserve its peak,
// and hand it to an executor goroutine. Exits when the device is removed
// or crashed, or when the server is closed and the shard's queue is fully
// drained.
func (s *Server) dispatch(d *device) {
	defer s.dispatchers.Done()
	sh := d.sh
	for {
		sh.mu.Lock()
		var req *request
		var shed []*request
		var now time.Time
		for {
			if d.dead || d.removed {
				sh.mu.Unlock()
				s.finishShed(now, shed)
				return
			}
			now = time.Now()
			shed = s.shedExpiredLocked(sh, now, shed)
			if !d.draining && d.active < d.slots {
				req = sh.q.take(d.ledger.Free())
			}
			if req != nil {
				break
			}
			if sh.closed && sh.q.count == 0 {
				sh.mu.Unlock()
				s.finishShed(now, shed)
				return
			}
			if len(shed) > 0 {
				// Drop the lock to complete the shed batch (trace close +
				// ticket resolve run off the admission lock), then retry.
				break
			}
			sh.cond.Wait()
		}
		if req != nil {
			s.admitLocked(sh, d, req)
		}
		sh.mu.Unlock()
		s.finishShed(now, shed)
	}
}

// admitLocked selects the request's plan variant (smallest-peak while the
// shard is degraded, fastest-fitting otherwise), reserves it in the
// device ledger, and hands the request to an executor goroutine. Runs
// with shard.mu held, in the admitting dispatcher.
func (s *Server) admitLocked(sh *shard, d *device, req *request) {
	degraded := sh.degraded
	var v *modelVariant
	if degraded {
		v = req.mdl.pickSmallest(d.ledger.Free())
	} else {
		v = req.mdl.pick(d.ledger.Free(), d.profile)
	}
	if v == nil || !d.ledger.TryReserve(req.id, v.peak) {
		// take admitted on the minimal peak and free bytes only grow while
		// this dispatcher holds the shard lock, so this cannot happen;
		// requeue defensively (before the admission metrics, so a retry
		// cannot double-count them).
		req.peak = req.mdl.minPeak
		s.enqueueLocked(sh, req)
		return
	}
	req.variant = v
	req.peak = v.peak
	req.estLatency = time.Duration(v.stats.LatencySeconds(d.profile) * float64(time.Second))
	req.metBudget = req.latencyBudget == 0 || req.estLatency <= req.latencyBudget
	req.degradedAdmit = degraded
	d.tracePoolUsed()
	sh.noteQueueChangedLocked(s.degradeDepth)
	s.traceAdmit(sh, d, req, degraded)
	if degraded {
		sh.m.degradedAdmissions++
	}
	if v.peak > req.mdl.minPeak {
		sh.m.variantUpgrades++
	}
	if req.latencyBudget > 0 {
		if req.metBudget {
			sh.m.latencyBudgetMet++
		} else {
			sh.m.latencyBudgetMissed++
		}
	}
	req.admittedAt = time.Now()
	req.setState(StateAdmitted)
	d.active++
	s.execs.Add(1)
	go s.execute(d, req)
}

// execute runs one admitted request on its device and resolves the
// ticket. If the device crashed mid-request (its ledger abandoned), the
// run's outcome is void: the request is re-queued once onto a surviving
// device or resolved with ErrDeviceLost.
func (s *Server) execute(d *device, req *request) {
	defer s.execs.Done()
	req.setState(StateRunning)
	if s.testExecGate != nil {
		s.testExecGate(d, req)
	}
	execSpan := s.traceExecuteStart(d, req)
	var run *netplan.RunResult
	var err error
	switch s.mode {
	case ExecDryRun:
		// Admission-control stress mode: hold the reservation across a
		// scheduling point so residency windows genuinely overlap.
		runtime.Gosched()
	default:
		// An unsampled request suppresses the executor's per-unit span
		// emission too (nil tracer into RunTraced): the no-op path must
		// not pay per-kernel Emit allocations either.
		extr := s.tr
		if !req.sampled {
			extr = nil
		}
		run, err = netplan.RunTraced(d.profile, req.mdl.net, req.seed, req.variant.opts, s.cache,
			extr, execSpan.ID(), execSpan.TraceID(), d.name)
		if err == nil && !run.AllVerified {
			err = fmt.Errorf("serve: %s on %s: output verification failed", req.mdl.name, d.name)
		}
		if err == nil && run.Violations != 0 {
			err = fmt.Errorf("serve: %s on %s: %d memory-safety violations", req.mdl.name, d.name, run.Violations)
		}
	}
	if run != nil && execSpan != nil {
		cycles := 0.0
		for _, r := range run.Modules {
			cycles += r.Stats.Cycles(d.profile)
		}
		for _, r := range run.Seams {
			cycles += r.Stats.Cycles(d.profile)
		}
		execSpan.SetCycles(0, cycles)
		execSpan.Attr(obs.Float("device_cycles", cycles))
	}
	execSpan.EndTo(req.spanBuf)
	// A crashed device's ledger was force-released by Abandon, so this
	// returns -1 on the dead path — expected there, an accounting bug
	// anywhere else.
	freed := d.ledger.Release(req.id)
	d.tracePoolUsed()
	now := time.Now()

	sh := d.sh
	sh.mu.Lock()
	d.active--
	dead := d.dead
	if !dead {
		if freed != req.peak && err == nil {
			err = fmt.Errorf("serve: ledger released %d bytes for request %d, reserved %d", freed, req.id, req.peak)
		}
		if err != nil {
			sh.m.failed++
		} else {
			sh.m.completed++
			d.completed++
		}
		sh.m.sampleLatency(now.Sub(req.submitted))
	}
	sh.cond.Broadcast()
	sh.mu.Unlock()

	if dead {
		s.failover(d, req)
		return
	}
	// Close the span tree before resolving: a caller that waits on the
	// ticket and then snapshots the tracer sees the whole tree.
	s.traceComplete(d, req, freed, now.Sub(req.submitted), err)
	req.resolve(Result{
		Model:            req.mdl.name,
		Device:           d.name,
		PeakBytes:        req.peak,
		Variant:          req.variant.desc,
		EstimatedLatency: req.estLatency,
		MetLatencyBudget: req.metBudget,
		Run:              run,
		QueueWait:        req.admittedAt.Sub(req.submitted),
		Latency:          now.Sub(req.submitted),
	}, err, StateDone)
}

// cancel implements Ticket.Cancel: remove the request from its shard's
// queue if it is still there.
func (s *Server) cancel(r *request) bool {
	idx := int(r.shardIdx.Load())
	s.mu.Lock()
	if idx < 0 || idx >= len(s.shards) {
		s.mu.Unlock()
		return false
	}
	sh := s.shards[idx]
	s.mu.Unlock()
	sh.mu.Lock()
	if !sh.q.remove(r) {
		// Already taken — admitted, shed, or mid-requeue onto another
		// shard after a crash. Admitted work always runs to completion so
		// the ledger release discipline stays trivial.
		sh.mu.Unlock()
		return false
	}
	sh.m.canceled++
	s.traceQueueExit(sh, r, "canceled")
	sh.noteQueueChangedLocked(s.degradeDepth)
	sh.cond.Broadcast()
	sh.mu.Unlock()
	r.resolve(Result{
		Model:     r.mdl.name,
		PeakBytes: r.peak,
		Latency:   time.Since(r.submitted),
	}, ErrCanceled, StateCanceled)
	return true
}

// Close drains the server gracefully: no new submissions are accepted,
// every queued request is still admitted (or shed by its deadline), and
// Close returns once all running requests have resolved. Safe to call
// more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	shards := append([]*shard(nil), s.shards...)
	s.mu.Unlock()
	for _, sh := range shards {
		sh.mu.Lock()
		sh.closed = true
		sh.cond.Broadcast()
		sh.mu.Unlock()
	}
	s.dispatchers.Wait()
	s.execs.Wait()
	return nil
}
