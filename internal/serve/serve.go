// Package serve is the multi-tenant inference serving subsystem: it runs
// many concurrent requests for multiple registered models across a
// simulated fleet of MCU devices, each with a fixed SRAM pool, using the
// whole-network planner's exact per-plan peak as the admission currency.
//
// The pieces, bottom to top:
//
//   - Pool ledger (Ledger). Each device tracks reservations byte-exactly;
//     a request is admitted only when its cached NetworkPlan peak fits the
//     pool's remaining bytes. Co-resident models whose peaks pack together
//     share one SRAM pool; over-commit is impossible by construction
//     (TryReserve refuses reservations past capacity).
//   - Admission queue. Submissions land in one bounded queue shared by the
//     fleet: shed-on-full at submit, strict priority with FIFO within a
//     priority, and per-request admission deadlines (defaulted per model)
//     shed lazily whenever the dispatcher scans.
//   - Work-stealing dispatch. Every device runs one dispatcher goroutine
//     that steals the highest-priority fitting request from the shared
//     queue whenever the device has free pool bytes and a free slot —
//     there is no static model→device assignment, so a small device keeps
//     serving small models while a large one absorbs the big ones.
//   - Async lifecycle. Submit returns a Ticket immediately; the request
//     moves submit → planned → queued → admitted → running → done (or an
//     explicit rejection), every transition observable and every submit
//     guaranteed to resolve. Execution is netplan.Run — the bit-exact
//     whole-network verification executor — through the server's bounded
//     plan cache (ExecDryRun skips the kernels for pure admission-control
//     load tests).
//   - Metrics. A snapshot struct reports throughput, sojourn-latency
//     percentiles, queue depth, per-device pool utilization, and every
//     rejection class, plus the plan cache's hit/miss/eviction counters.
//
// The whole subsystem is safe under -race; the property tests fuzz the
// ledger invariant (admitted peaks never exceed a pool) under concurrent
// submit/cancel.
package serve

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/vmcu-project/vmcu/internal/graph"
	"github.com/vmcu-project/vmcu/internal/mcu"
	"github.com/vmcu-project/vmcu/internal/netplan"
)

// ExecMode selects what an admitted request executes.
type ExecMode int

const (
	// ExecVerify (the default) runs netplan.Run: the full bit-exact
	// whole-network verification on the admitting device's profile.
	ExecVerify ExecMode = iota
	// ExecDryRun skips the kernels: the request is planned, admitted, and
	// released without executing, exercising only the admission machinery.
	// Load generators use it to stress queue/ledger behaviour at request
	// rates the simulated kernels could never sustain.
	ExecDryRun
)

// DeviceConfig describes one simulated fleet device.
type DeviceConfig struct {
	// Name identifies the device in results and metrics.
	Name string
	// Profile is the simulated MCU the device's requests execute on.
	Profile mcu.Profile
	// PoolBytes is the SRAM pool the ledger partitions; 0 uses the
	// profile's full RAM capacity.
	PoolBytes int
	// Slots caps concurrently running requests on the device; 0 uses
	// DefaultSlots. Memory admission is always the ledger's job — slots
	// only bound compute concurrency.
	Slots int
}

// DefaultSlots is the per-device concurrent-run cap when
// DeviceConfig.Slots is 0.
const DefaultSlots = 4

// DefaultQueueCap is the admission queue bound when Options.QueueCap is 0.
const DefaultQueueCap = 256

// DefaultCacheEntries is the plan-cache LRU bound when Options.CacheEntries
// is 0.
const DefaultCacheEntries = 64

// Options configure a Server.
type Options struct {
	// Devices is the simulated fleet; at least one is required.
	Devices []DeviceConfig
	// QueueCap bounds the admission queue (shed-on-full); 0 uses
	// DefaultQueueCap.
	QueueCap int
	// CacheEntries bounds the server's netplan plan cache (LRU eviction);
	// 0 uses DefaultCacheEntries. Ignored when Cache is set.
	CacheEntries int
	// Cache optionally injects a plan cache (shared with other callers);
	// nil builds a private bounded cache.
	Cache *netplan.Cache
	// Mode selects what admitted requests execute (default ExecVerify).
	Mode ExecMode
}

// ModelConfig carries a registered model's serving defaults.
type ModelConfig struct {
	// Priority is the default admission priority for the model's
	// requests (higher is sooner; SubmitOptions.Priority overrides).
	Priority int
	// MaxQueueWait is the default admission deadline, relative to
	// submission; 0 means no deadline (SubmitOptions.Deadline overrides).
	MaxQueueWait time.Duration
}

// model is one registered model: a backbone plus serving defaults. peak is
// the planned whole-network peak, fixed at registration (plans are
// deterministic, so re-solves after cache eviction reproduce it).
type model struct {
	name string
	net  graph.Network
	cfg  ModelConfig
	peak int
}

// device pairs a fleet device with its ledger and dispatch state.
type device struct {
	name    string
	profile mcu.Profile
	ledger  *Ledger
	slots   int
	// active and completed are guarded by Server.mu.
	active    int
	completed uint64
}

// Server coordinates admission and execution across the fleet.
type Server struct {
	mode     ExecMode
	cache    *netplan.Cache
	devices  []*device
	queueCap int
	maxPool  int
	started  time.Time

	mu     sync.Mutex
	cond   *sync.Cond
	models map[string]*model
	queue  []*request // arrival order
	nextID uint64
	closed bool
	m      metricsState

	dispatchers sync.WaitGroup
	execs       sync.WaitGroup
}

// NewServer builds the fleet, starts one dispatcher per device, and
// returns a serving server ready for Register/Submit.
func NewServer(opts Options) (*Server, error) {
	if len(opts.Devices) == 0 {
		return nil, fmt.Errorf("serve: at least one device is required")
	}
	queueCap := opts.QueueCap
	if queueCap <= 0 {
		queueCap = DefaultQueueCap
	}
	cache := opts.Cache
	if cache == nil {
		entries := opts.CacheEntries
		if entries <= 0 {
			entries = DefaultCacheEntries
		}
		cache = netplan.NewCacheWithCap(entries)
	}
	s := &Server{
		mode:     opts.Mode,
		cache:    cache,
		queueCap: queueCap,
		models:   make(map[string]*model),
		started:  time.Now(),
	}
	s.cond = sync.NewCond(&s.mu)
	seen := make(map[string]bool, len(opts.Devices))
	for i, dc := range opts.Devices {
		name := dc.Name
		if name == "" {
			name = fmt.Sprintf("dev%d", i)
		}
		if seen[name] {
			return nil, fmt.Errorf("serve: duplicate device name %q", name)
		}
		seen[name] = true
		pool := dc.PoolBytes
		if pool == 0 {
			pool = dc.Profile.RAMBytes()
		}
		led, err := NewLedger(pool)
		if err != nil {
			return nil, fmt.Errorf("serve: device %s: %w", name, err)
		}
		slots := dc.Slots
		if slots <= 0 {
			slots = DefaultSlots
		}
		d := &device{name: name, profile: dc.Profile, ledger: led, slots: slots}
		s.devices = append(s.devices, d)
		if pool > s.maxPool {
			s.maxPool = pool
		}
	}
	for _, d := range s.devices {
		s.dispatchers.Add(1)
		go s.dispatch(d)
	}
	return s, nil
}

// Register adds a model under name with serving defaults. The model is
// planned immediately (through the plan cache), so registration rejects
// unschedulable networks and models whose peak exceeds every device pool
// (ErrTooLarge) before any request is taken.
func (s *Server) Register(name string, net graph.Network, cfg ModelConfig) error {
	if name == "" {
		return fmt.Errorf("serve: model name must be non-empty")
	}
	np, _, err := s.cache.Plan(net, netplan.Options{})
	if err != nil {
		return fmt.Errorf("serve: model %s: %w", name, err)
	}
	if np.PeakBytes > s.maxPool {
		s.mu.Lock()
		s.m.rejectedTooLarge++
		s.mu.Unlock()
		return fmt.Errorf("serve: model %s needs %d bytes, largest pool is %d: %w",
			name, np.PeakBytes, s.maxPool, ErrTooLarge)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, dup := s.models[name]; dup {
		return fmt.Errorf("serve: model %s already registered", name)
	}
	s.models[name] = &model{name: name, net: net, cfg: cfg, peak: np.PeakBytes}
	return nil
}

// Submit enqueues one inference request for a registered model and returns
// its Ticket. Rejections at submit time — unknown model, closed server,
// full queue — return an error and no ticket; every returned ticket is
// guaranteed to resolve (done, deadline-shed, or canceled).
func (s *Server) Submit(modelName string, opts SubmitOptions) (*Ticket, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	mdl, ok := s.models[modelName]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, modelName)
	}

	req := &request{
		srv:       s,
		mdl:       mdl,
		seed:      opts.Seed,
		submitted: time.Now(),
		doneCh:    make(chan struct{}),
	}
	req.setState(StateSubmitted)

	// The plan was resolved through the cache at registration and plans
	// are deterministic, so the model's stored peak IS the request's
	// admission currency — no re-solve on the submit path (the executor
	// re-plans through the cache, off this path, if the entry was
	// evicted). Registration also guarantees the peak fits some pool.
	req.peak = mdl.peak
	req.setState(StatePlanned)

	req.priority = opts.Priority
	if req.priority == 0 {
		req.priority = mdl.cfg.Priority
	}
	req.deadline = opts.Deadline
	if req.deadline.IsZero() && mdl.cfg.MaxQueueWait > 0 {
		req.deadline = req.submitted.Add(mdl.cfg.MaxQueueWait)
	}
	if !req.deadline.IsZero() {
		// Wake the dispatchers just past the deadline so an otherwise idle
		// queue still sheds the request promptly. Armed before the request
		// is visible to any dispatcher so resolve() can stop it race-free.
		req.timer = time.AfterFunc(time.Until(req.deadline)+time.Millisecond, s.kick)
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		req.stopTimer()
		return nil, ErrClosed
	}
	if len(s.queue) >= s.queueCap {
		s.m.rejectedFull++
		s.mu.Unlock()
		req.stopTimer()
		return nil, fmt.Errorf("%w (cap %d)", ErrQueueFull, s.queueCap)
	}
	s.nextID++
	req.id = s.nextID
	req.setState(StateQueued)
	s.queue = append(s.queue, req)
	if len(s.queue) > s.m.queueHighWater {
		s.m.queueHighWater = len(s.queue)
	}
	s.m.submitted++
	s.cond.Broadcast()
	s.mu.Unlock()
	return &Ticket{r: req}, nil
}

// kick wakes every dispatcher to rescan the queue (deadline timers).
func (s *Server) kick() {
	s.mu.Lock()
	s.cond.Broadcast()
	s.mu.Unlock()
}

// dispatch is one device's work-stealing loop: shed expired requests,
// steal the best fitting one, reserve its peak, and hand it to an
// executor goroutine. Exits when the server is closed and the queue is
// fully drained.
func (s *Server) dispatch(d *device) {
	defer s.dispatchers.Done()
	for {
		s.mu.Lock()
		var req *request
		for {
			s.shedExpiredLocked(time.Now())
			req = s.takeLocked(d)
			if req != nil || (s.closed && len(s.queue) == 0) {
				break
			}
			s.cond.Wait()
		}
		if req == nil {
			s.mu.Unlock()
			return
		}
		// Only this dispatcher reserves on d, and takeLocked checked the
		// fit under s.mu, so the reservation cannot fail (releases only
		// grow the free space). Requeue defensively all the same.
		if !d.ledger.TryReserve(req.id, req.peak) {
			s.queue = append([]*request{req}, s.queue...)
			s.mu.Unlock()
			continue
		}
		req.admittedAt = time.Now()
		req.setState(StateAdmitted)
		d.active++
		s.execs.Add(1)
		go s.execute(d, req)
		s.mu.Unlock()
	}
}

// execute runs one admitted request on its device and resolves the ticket.
func (s *Server) execute(d *device, req *request) {
	defer s.execs.Done()
	req.setState(StateRunning)
	var run *netplan.RunResult
	var err error
	switch s.mode {
	case ExecDryRun:
		// Admission-control stress mode: hold the reservation across a
		// scheduling point so residency windows genuinely overlap.
		runtime.Gosched()
	default:
		run, err = netplan.Run(d.profile, req.mdl.net, req.seed, netplan.Options{}, s.cache)
		if err == nil && !run.AllVerified {
			err = fmt.Errorf("serve: %s on %s: output verification failed", req.mdl.name, d.name)
		}
		if err == nil && run.Violations != 0 {
			err = fmt.Errorf("serve: %s on %s: %d memory-safety violations", req.mdl.name, d.name, run.Violations)
		}
	}
	freed := d.ledger.Release(req.id)
	now := time.Now()

	s.mu.Lock()
	d.active--
	if freed != req.peak && err == nil {
		err = fmt.Errorf("serve: ledger released %d bytes for request %d, reserved %d", freed, req.id, req.peak)
	}
	if err != nil {
		s.m.failed++
	} else {
		s.m.completed++
		d.completed++
	}
	s.m.sampleLatency(now.Sub(req.submitted))
	s.cond.Broadcast()
	s.mu.Unlock()

	req.resolve(Result{
		Model:     req.mdl.name,
		Device:    d.name,
		PeakBytes: req.peak,
		Run:       run,
		QueueWait: req.admittedAt.Sub(req.submitted),
		Latency:   now.Sub(req.submitted),
	}, err, StateDone)
}

// cancel implements Ticket.Cancel: remove the request from the queue if it
// is still there.
func (s *Server) cancel(r *request) bool {
	s.mu.Lock()
	for i, q := range s.queue {
		if q == r {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			s.m.canceled++
			s.cond.Broadcast()
			s.mu.Unlock()
			r.resolve(Result{
				Model:     r.mdl.name,
				PeakBytes: r.peak,
				Latency:   time.Since(r.submitted),
			}, ErrCanceled, StateCanceled)
			return true
		}
	}
	s.mu.Unlock()
	return false
}

// Close drains the server gracefully: no new submissions are accepted,
// every queued request is still admitted (or shed by its deadline), and
// Close returns once all running requests have resolved. Safe to call
// more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.dispatchers.Wait()
	s.execs.Wait()
	return nil
}
