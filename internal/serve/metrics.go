package serve

import (
	"sort"
	"time"

	"github.com/vmcu-project/vmcu/internal/netplan"
)

// latencyWindow bounds each shard's sojourn-latency reservoir:
// percentiles are computed over the most recent latencyWindow completions
// per shard, so a long-running server's snapshot reflects current
// behaviour at fixed memory.
const latencyWindow = 8192

// latencyBuckets are the sojourn-latency histogram's upper bounds, le
// semantics: a completion counts into the first bucket whose bound it
// does not exceed, with one implicit overflow bucket past the last bound.
// Roughly 1-2-5 exponential from 1ms to 30s, covering sub-millisecond
// dry-run admissions through multi-second verification backlogs.
var latencyBuckets = []time.Duration{
	1 * time.Millisecond,
	2 * time.Millisecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	20 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	200 * time.Millisecond,
	500 * time.Millisecond,
	1 * time.Second,
	2 * time.Second,
	5 * time.Second,
	10 * time.Second,
	30 * time.Second,
}

// metricsState is one shard's internal counter block, guarded by
// shard.mu. Metrics() aggregates the blocks across shards.
type metricsState struct {
	submitted           uint64
	completed           uint64
	failed              uint64
	canceled            uint64
	shedDeadline        uint64
	variantUpgrades     uint64
	latencyBudgetMet    uint64
	latencyBudgetMissed uint64
	queueHighWater      int
	degradedEngaged     uint64
	degradedAdmissions  uint64
	requeued            uint64
	deviceLost          uint64
	deviceCrashes       uint64

	latencies [latencyWindow]time.Duration
	latIdx    int
	latCount  int

	// Bucketed latency histogram over every completion since start (the
	// reservoir above is windowed; the histogram is cumulative, which is
	// what a Prometheus-style scrape needs). latHist[i] counts completions
	// in bucket i (len(latencyBuckets)+1 buckets, last is overflow).
	latHist  []uint64
	latSum   time.Duration
	latTotal uint64
}

// sampleLatency records one completion's sojourn time into the windowed
// reservoir and the cumulative histogram. Runs with shard.mu held.
func (m *metricsState) sampleLatency(d time.Duration) {
	m.latencies[m.latIdx] = d
	m.latIdx = (m.latIdx + 1) % latencyWindow
	if m.latCount < latencyWindow {
		m.latCount++
	}
	if m.latHist == nil {
		m.latHist = make([]uint64, len(latencyBuckets)+1)
	}
	m.latHist[latencyBucketIndex(d)]++
	m.latSum += d
	m.latTotal++
}

// latencyBucketIndex returns the histogram bucket for one completion:
// the first bound >= d, or the overflow bucket.
func latencyBucketIndex(d time.Duration) int {
	return sort.Search(len(latencyBuckets), func(i int) bool {
		return d <= latencyBuckets[i]
	})
}

// LatencyHistogram is the bucketed sojourn-latency distribution.
type LatencyHistogram struct {
	// Bounds are the bucket upper bounds (le semantics). Counts has
	// len(Bounds)+1 entries — one per bucket plus the overflow bucket —
	// and is NOT cumulative; a Prometheus exposition accumulates it.
	Bounds []time.Duration
	Counts []uint64
	// Count and Sum cover every completion since server start.
	Count uint64
	Sum   time.Duration
}

// DeviceMetrics is one fleet device's snapshot. Devices removed or
// crashed out of the fleet no longer appear.
type DeviceMetrics struct {
	Name string
	// Shard is the device group (profile name) the device serves in.
	Shard string
	// CapacityBytes is the SRAM pool size; UsedBytes the reserved bytes at
	// snapshot time; PeakUsedBytes the lifetime high-water mark (never
	// above CapacityBytes — the ledger invariant).
	CapacityBytes int
	UsedBytes     int
	PeakUsedBytes int
	// Utilization and PeakUtilization are the byte ratios of the above.
	Utilization     float64
	PeakUtilization float64
	// Residents is the number of co-resident requests holding
	// reservations; Active the subset currently running.
	Residents int
	Active    int
	// Admitted/Refused are the ledger's lifetime reservation counts;
	// Completed the requests that finished successfully on this device.
	Admitted  uint64
	Refused   uint64
	Completed uint64
	// Draining marks a device mid-RemoveDevice: finishing in-flight work,
	// taking nothing new.
	Draining bool
}

// ShardMetrics is one device group's snapshot.
type ShardMetrics struct {
	// Key is the group identity: the shared mcu.Profile's name.
	Key string
	// Devices counts the shard's live (non-removed) devices.
	Devices int
	// QueueDepth and QueueHighWater report this shard's own queue.
	QueueDepth     int
	QueueHighWater int
	// Degraded reports whether the shard is currently in degraded mode;
	// DegradedAdmissions counts admissions made in it (smallest-peak
	// variant), DegradedEngaged how many times the mode engaged.
	Degraded           bool
	DegradedAdmissions uint64
	DegradedEngaged    uint64
	// Submitted/Completed/ShedDeadline are this shard's shares of the
	// server-wide counters; Requeued counts churn-displaced requests this
	// shard absorbed; DeviceLost requests stranded here; DeviceCrashes
	// simulated crashes of this shard's devices.
	Submitted     uint64
	Completed     uint64
	ShedDeadline  uint64
	Requeued      uint64
	DeviceLost    uint64
	DeviceCrashes uint64
}

// Metrics is the server snapshot: counters, throughput, latency
// percentiles, per-shard queue state, per-device pools, and plan-cache
// stats.
type Metrics struct {
	Uptime time.Duration
	// Submitted counts accepted submissions (tickets created). Each one
	// resolves into exactly one of Completed, Failed, Canceled,
	// ShedDeadline, or DeviceLost; the difference is the work still in
	// flight. Requests re-queued after a device crash count once.
	Submitted uint64
	Completed uint64
	Failed    uint64
	Canceled  uint64
	// RejectedQueueFull counts submit-time rejections (no ticket was
	// created); RejectedTooLarge counts registrations refused because the
	// model's peak exceeds every pool; ShedDeadline counts queued requests
	// shed at their admission deadline.
	RejectedQueueFull uint64
	RejectedTooLarge  uint64
	ShedDeadline      uint64
	// VariantUpgrades counts admissions where the selected plan variant's
	// peak exceeded the model's minimal one — spare pool bytes traded for
	// estimated latency (always 0 for models registered without Pareto).
	VariantUpgrades uint64
	// LatencyBudgetMet and LatencyBudgetMissed account requests that
	// carried an on-device latency budget at admission: whether the
	// fastest fitting variant's estimated latency met it. Requests shed
	// before admission are counted in ShedDeadline, not here.
	LatencyBudgetMet    uint64
	LatencyBudgetMissed uint64
	// DegradedAdmissions counts admissions made while the home shard was
	// in degraded mode (smallest-peak variant instead of fastest);
	// DegradedEngaged how many times any shard entered the mode.
	DegradedAdmissions uint64
	DegradedEngaged    uint64
	// Requeued counts requests displaced by device churn and re-queued
	// onto a surviving device; DeviceLost those no device could absorb
	// (resolved with ErrDeviceLost); DeviceCrashes simulated crashes.
	Requeued      uint64
	DeviceLost    uint64
	DeviceCrashes uint64
	// ThroughputRPS is completed requests per second of uptime.
	ThroughputRPS float64
	// Latency percentiles are sojourn times (submit → done) over the most
	// recent completions (successful or failed), zero before the first,
	// merged across shards.
	LatencyP50 time.Duration
	LatencyP95 time.Duration
	LatencyP99 time.Duration
	// LatencyHistogram is the bucketed sojourn-latency distribution over
	// every completion since start (not windowed) — the shape a
	// Prometheus-style exporter scrapes; bucket counts summed across
	// shards.
	LatencyHistogram LatencyHistogram
	// QueueDepth sums the per-shard queue depths; QueueHighWater sums the
	// per-shard high-water marks (the marks need not be simultaneous);
	// QueueCap is the per-shard bound.
	QueueDepth     int
	QueueHighWater int
	QueueCap       int
	Shards         []ShardMetrics
	Devices        []DeviceMetrics
	// Cache reports the serving plan cache (hits, misses, evictions,
	// current length).
	Cache netplan.CacheStats
}

// Metrics returns a consistent-per-shard snapshot of the server's
// counters and the fleet's pool state (shards are locked one at a time,
// so cross-shard sums may straddle in-flight transitions).
func (s *Server) Metrics() Metrics {
	s.mu.Lock()
	out := Metrics{
		Uptime:            time.Since(s.started),
		RejectedQueueFull: s.rejectedFull,
		RejectedTooLarge:  s.rejectedTooLarge,
		QueueCap:          s.queueCap,
	}
	shards := append([]*shard(nil), s.shards...)
	s.mu.Unlock()

	out.LatencyHistogram = LatencyHistogram{
		Bounds: append([]time.Duration(nil), latencyBuckets...),
		Counts: make([]uint64, len(latencyBuckets)+1),
	}
	var samples []time.Duration
	for _, sh := range shards {
		sh.mu.Lock()
		m := &sh.m
		out.Submitted += m.submitted
		out.Completed += m.completed
		out.Failed += m.failed
		out.Canceled += m.canceled
		out.ShedDeadline += m.shedDeadline
		out.VariantUpgrades += m.variantUpgrades
		out.LatencyBudgetMet += m.latencyBudgetMet
		out.LatencyBudgetMissed += m.latencyBudgetMissed
		out.DegradedAdmissions += m.degradedAdmissions
		out.DegradedEngaged += m.degradedEngaged
		out.Requeued += m.requeued
		out.DeviceLost += m.deviceLost
		out.DeviceCrashes += m.deviceCrashes
		out.QueueDepth += sh.q.count
		out.QueueHighWater += m.queueHighWater
		out.LatencyHistogram.Count += m.latTotal
		out.LatencyHistogram.Sum += m.latSum
		for i, c := range m.latHist {
			out.LatencyHistogram.Counts[i] += c
		}
		samples = append(samples, m.latencies[:m.latCount]...)
		out.Shards = append(out.Shards, ShardMetrics{
			Key:                sh.key,
			Devices:            len(sh.devices),
			QueueDepth:         sh.q.count,
			QueueHighWater:     m.queueHighWater,
			Degraded:           sh.degraded,
			DegradedAdmissions: m.degradedAdmissions,
			DegradedEngaged:    m.degradedEngaged,
			Submitted:          m.submitted,
			Completed:          m.completed,
			ShedDeadline:       m.shedDeadline,
			Requeued:           m.requeued,
			DeviceLost:         m.deviceLost,
			DeviceCrashes:      m.deviceCrashes,
		})
		for _, d := range sh.devices {
			cap, used, peak := d.ledger.Capacity(), d.ledger.Used(), d.ledger.PeakUsed()
			adm, ref := d.ledger.Counters()
			out.Devices = append(out.Devices, DeviceMetrics{
				Name:            d.name,
				Shard:           sh.key,
				CapacityBytes:   cap,
				UsedBytes:       used,
				PeakUsedBytes:   peak,
				Utilization:     float64(used) / float64(cap),
				PeakUtilization: float64(peak) / float64(cap),
				Residents:       d.ledger.Residents(),
				Active:          d.active,
				Admitted:        adm,
				Refused:         ref,
				Completed:       d.completed,
				Draining:        d.draining,
			})
		}
		sh.mu.Unlock()
	}
	if sec := out.Uptime.Seconds(); sec > 0 {
		out.ThroughputRPS = float64(out.Completed) / sec
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	out.LatencyP50 = percentile(samples, 0.50)
	out.LatencyP95 = percentile(samples, 0.95)
	out.LatencyP99 = percentile(samples, 0.99)
	out.Cache = s.cache.Stats()
	return out
}

// percentile returns the q-quantile of sorted samples (nearest-rank), or 0
// when empty.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
