package serve

import (
	"testing"
	"time"

	"github.com/vmcu-project/vmcu/internal/graph"
	"github.com/vmcu-project/vmcu/internal/mcu"
)

func TestPercentileEdgeCases(t *testing.T) {
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
	one := []time.Duration{42 * time.Millisecond}
	for _, q := range []float64{0.0, 0.5, 0.95, 0.99, 1.0} {
		if got := percentile(one, q); got != one[0] {
			t.Errorf("single-sample p%.0f = %v, want %v", 100*q, got, one[0])
		}
	}
	sorted := []time.Duration{1, 2, 3, 4}
	if got := percentile(sorted, 0.5); got != 2 {
		t.Errorf("p50 of 1..4 = %v, want 2", got)
	}
	if got := percentile(sorted, 1.0); got != 4 {
		t.Errorf("p100 of 1..4 = %v, want 4", got)
	}
}

// TestMetricsEmptySnapshot: a freshly started server reports a fully
// coherent snapshot — zero percentiles, zero throughput, idle pools — with
// nothing submitted.
func TestMetricsEmptySnapshot(t *testing.T) {
	s, err := NewServer(Options{Devices: []DeviceConfig{{Name: "m4", Profile: mcu.CortexM4()}}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	m := s.Metrics()
	if m.LatencyP50 != 0 || m.LatencyP95 != 0 || m.LatencyP99 != 0 {
		t.Errorf("empty percentiles %v/%v/%v, want zeros", m.LatencyP50, m.LatencyP95, m.LatencyP99)
	}
	if m.Submitted != 0 || m.Completed != 0 || m.ThroughputRPS != 0 {
		t.Errorf("empty counters: %+v", m)
	}
	if m.QueueDepth != 0 || m.QueueHighWater != 0 {
		t.Errorf("queue not idle: depth %d highwater %d", m.QueueDepth, m.QueueHighWater)
	}
	if len(m.Devices) != 1 || m.Devices[0].UsedBytes != 0 || m.Devices[0].Utilization != 0 {
		t.Errorf("device pool not idle: %+v", m.Devices)
	}
}

// TestMetricsSingleSampleWindow: after exactly one completion the latency
// reservoir holds one sample, and every percentile reports it.
func TestMetricsSingleSampleWindow(t *testing.T) {
	s, err := NewServer(Options{
		Devices: []DeviceConfig{{Name: "m4", Profile: mcu.CortexM4()}},
		Mode:    ExecDryRun,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Register("vww", graph.VWW(), ModelConfig{}); err != nil {
		t.Fatal(err)
	}
	tk, err := s.Submit("vww", SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tk.Result()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.Completed != 1 {
		t.Fatalf("completed %d, want 1", m.Completed)
	}
	if m.LatencyP50 != m.LatencyP95 || m.LatencyP95 != m.LatencyP99 {
		t.Errorf("single-sample percentiles diverge: %v/%v/%v", m.LatencyP50, m.LatencyP95, m.LatencyP99)
	}
	if m.LatencyP50 != res.Latency {
		t.Errorf("p50 %v != the lone completion's latency %v", m.LatencyP50, res.Latency)
	}
	if m.LatencyP50 <= 0 {
		t.Errorf("lone sample %v not positive", m.LatencyP50)
	}
	if m.ThroughputRPS <= 0 {
		t.Errorf("throughput %v not positive after a completion", m.ThroughputRPS)
	}
}

// TestMetricsBudgetCountersIdle: budget counters stay untouched when no
// request carries a latency budget.
func TestMetricsBudgetCountersIdle(t *testing.T) {
	s, err := NewServer(Options{
		Devices: []DeviceConfig{{Name: "m4", Profile: mcu.CortexM4()}},
		Mode:    ExecDryRun,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Register("vww", graph.VWW(), ModelConfig{}); err != nil {
		t.Fatal(err)
	}
	tk, err := s.Submit("vww", SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Result(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.LatencyBudgetMet != 0 || m.LatencyBudgetMissed != 0 {
		t.Errorf("budget counters moved without budgets: met %d missed %d",
			m.LatencyBudgetMet, m.LatencyBudgetMissed)
	}
}
