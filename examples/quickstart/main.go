// Quickstart: plan and execute one fully connected layer with vMCU's
// segment-level memory management on a simulated Cortex-M4, and see the
// peak-RAM saving over tensor-level management.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/vmcu-project/vmcu"
)

func main() {
	// A 1x1 convolution over a 40x40x32 activation producing 16 channels —
	// a layer that cannot be updated in place at tensor granularity.
	const h, c, k = 40, 32, 16

	p := vmcu.PlanPointwise(h, h, c, k)
	fmt.Println("memory plan (paper §4):")
	fmt.Printf("  segment size          : %d bytes (min of in/out rows, §5.3)\n", p.SegBytes)
	fmt.Printf("  input tensor          : %5.1f KB\n", vmcu.KB(p.InBytes))
	fmt.Printf("  output tensor         : %5.1f KB\n", vmcu.KB(p.OutBytes))
	fmt.Printf("  empty segments needed : %d (bIn - bOut)\n", p.GapSegs)
	fmt.Printf("  vMCU peak footprint   : %5.1f KB\n", vmcu.KB(p.FootprintBytes))
	fmt.Printf("  tensor-level footprint: %5.1f KB (input + output)\n", vmcu.KB(p.InBytes+p.OutBytes))
	fmt.Printf("  reduction             : %.1f%%\n\n",
		100*(1-float64(p.FootprintBytes)/float64(p.InBytes+p.OutBytes)))

	// Execute the layer for real on the simulated STM32-F411RE: the kernel
	// streams output segments into pool space freed from the input, the
	// shadow state proves nothing live was overwritten, and the int8
	// result is verified against a golden reference.
	res, err := vmcu.RunPointwise(vmcu.CortexM4(), h, c, k, 42)
	if err != nil {
		log.Fatal(err)
	}
	m4 := vmcu.CortexM4()
	fmt.Println("execution on the simulated STM32-F411RE:")
	fmt.Printf("  MACs                  : %d\n", res.Stats.MACs)
	fmt.Printf("  RAM traffic           : %d B read, %d B written\n",
		res.Stats.RAMReadBytes, res.Stats.RAMWriteBytes)
	fmt.Printf("  modulo boundary checks: %d\n", res.Stats.DivModOps)
	fmt.Printf("  modeled latency       : %.2f ms\n", res.Stats.LatencySeconds(m4)*1e3)
	fmt.Printf("  modeled energy        : %.2f mJ\n", res.Stats.EnergyJoules(m4)*1e3)
	fmt.Printf("  output verified       : %v\n", res.Verified)
	fmt.Printf("  memory violations     : %d\n", res.Violations)
}
