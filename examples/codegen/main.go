// Codegen walkthrough (paper §6): build the Figure-4 fully connected
// kernel through the loop-nest IR, execute it with the interpreter on the
// simulated MCU, and lower the same program to ARM-intrinsic C.
//
//	go run ./examples/codegen
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"github.com/vmcu-project/vmcu/internal/codegen"
	"github.com/vmcu-project/vmcu/internal/intrin"
	"github.com/vmcu-project/vmcu/internal/ir"
	"github.com/vmcu-project/vmcu/internal/kernels"
	"github.com/vmcu-project/vmcu/internal/mcu"
	"github.com/vmcu-project/vmcu/internal/plan"
	"github.com/vmcu-project/vmcu/internal/seg"
	"github.com/vmcu-project/vmcu/internal/tensor"
)

func main() {
	const m, k, n = 8, 32, 16
	p := plan.FC(m, k, n)
	req := tensor.NewRequant(0.015, 0)
	prog := ir.BuildFC(m, k, n, p.SegBytes, req)

	// 1. Interpret the IR against the simulated MCU.
	dev := mcu.New(mcu.CortexM4(), 1<<16)
	capBytes := (p.FootprintBytes + p.SegBytes - 1) / p.SegBytes * p.SegBytes
	pool, err := seg.NewPool(dev, 0, capBytes, p.SegBytes)
	if err != nil {
		log.Fatal(err)
	}
	ctx := intrin.NewCtx(dev, pool)
	rng := rand.New(rand.NewSource(1))
	in := make([]int8, m*k)
	w := make([]int8, n*k)
	bias := make([]int32, n)
	for i := range in {
		in[i] = int8(rng.Intn(255) - 127)
	}
	for i := range w {
		w[i] = int8(rng.Intn(255) - 127)
	}
	wRef, _ := kernels.PackInt8(dev, w)
	bRef, _ := kernels.PackInt32(dev, bias)
	inPl := kernels.PlaceInput(ctx, "In", in, p.GapBytes())
	outID := dev.NewTensorID("Out")
	err = ir.Run(prog, ctx, ir.Bindings{
		Tensors: map[string]ir.TensorBinding{
			"In":  {ID: inPl.ID, Off: inPl.Off},
			"Out": {ID: outID, Off: inPl.Off - p.GapBytes()},
		},
		Blobs: map[string]mcu.FlashRef{"Weight": wRef, "Bias": bRef},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := dev.CheckFaults(); err != nil {
		log.Fatal(err)
	}
	got := kernels.Extract(ctx, kernels.Placement{ID: outID, Off: inPl.Off - p.GapBytes(), Bytes: m * n})
	want := kernels.GoldenFC(in, m, k, n, w, bias, req)
	for i := range want {
		if got[i] != want[i] {
			log.Fatalf("IR output mismatch at %d", i)
		}
	}
	fmt.Printf("interpreted FC %dx%dx%d on the simulated M4: %d MACs, output bit-exact\n\n",
		m, k, n, dev.Stats.MACs)

	// 2. Lower the same program to C.
	src := codegen.EmitC(prog, codegen.Options{PoolCapBytes: capBytes})
	fmt.Printf("generated C (%d lines). Excerpt:\n\n", strings.Count(src, "\n"))
	lines := strings.Split(src, "\n")
	for _, l := range lines {
		if strings.Contains(l, "void vmcu_fc") || strings.Contains(l, "vmcu_pool_read") ||
			strings.Contains(l, "vmcu_dot_s8(va") || strings.Contains(l, "vmcu_pool_write") {
			fmt.Println("   ", strings.TrimSpace(l))
		}
	}
	fmt.Println("\nfull source available via: go run ./cmd/vmcu-codegen -m 8 -k 32 -n 16")
}
