// Iso-memory scaling study (paper Figures 11 and 12): for each VWW
// module, how much larger an image or how many more channels could a
// network designer afford under vMCU while spending exactly the RAM
// TinyEngine needs for the original module? This is the paper's argument
// that vMCU widens the NAS design space without retraining.
//
//	go run ./examples/iso_scaling
package main

import (
	"fmt"

	"github.com/vmcu-project/vmcu"
	"github.com/vmcu-project/vmcu/internal/baseline"
	"github.com/vmcu-project/vmcu/internal/eval"
)

func main() {
	img := eval.Figure11()
	ch := eval.Figure12()
	fmt.Println("iso-memory headroom vs TinyEngine's budget (MCUNet-5fps-VWW):")
	fmt.Printf("%-6s %14s %12s %12s\n", "module", "TE budget KB", "image ratio", "channel ratio")
	for i, m := range vmcu.VWW().Modules {
		fmt.Printf("%-6s %14.1f %11.2fx %11.2fx\n",
			m.Name, vmcu.KB(baseline.TinyEngineBottleneckRAM(m)), img[i].Ratio, ch[i].Ratio)
	}
	fmt.Println("\nratios > 1 mean a larger (more accurate) module fits in the same RAM;")
	fmt.Println("the paper reports 1.29-2.58x (image) and 1.26-3.17x (channels).")
	fmt.Println("Tiny 3x3-image modules are workspace-dominated in this substrate and")
	fmt.Println("show no headroom — see EXPERIMENTS.md.")
}
