// Pareto: navigate the memory↔latency frontier of a whole-network
// schedule. The planner's default objective minimizes peak SRAM — on
// ImageNet that means spatial patch splitting with halo recompute, which
// costs cycles. The analytic cost model (vmcu.EstimateCost) prices every
// candidate schedule without executing it, so the scheduler can instead
// return the full non-dominated (peak bytes, est. cycles, est. energy)
// set, pick the fastest plan under a byte budget, and let a serving fleet
// upgrade requests to faster variants whenever pool bytes are spare.
//
//	go run ./examples/pareto
package main

import (
	"fmt"
	"log"

	"github.com/vmcu-project/vmcu"
)

func main() {
	m4 := vmcu.CortexM4()
	net := vmcu.ImageNet()

	// 1. The memory-optimal schedule and its predicted cost.
	minPeak, err := vmcu.PlanNetworkWithOptions(net, vmcu.ScheduleOptions{})
	if err != nil {
		log.Fatal(err)
	}
	est, err := vmcu.EstimateCost(m4, net, minPeak)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("min-peak schedule: %.1f KB peak, est. %.1f ms / %.2f mJ on the M4\n",
		vmcu.KB(minPeak.PeakBytes), 1e3*est.LatencySeconds, 1e3*est.EnergyJoules)

	// 2. The whole frontier: every non-dominated schedule between
	// memory-optimal and latency-optimal.
	frontier, err := vmcu.PlanNetworkPareto(m4, net, vmcu.ScheduleOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPareto frontier (%d plans):\n", len(frontier))
	for _, v := range frontier {
		fmt.Printf("  %-30s %6.1f KB  %8.1f ms  %d halo rows recomputed\n",
			v.Desc, vmcu.KB(v.Plan.PeakBytes), 1e3*v.Est.LatencySeconds, v.RecomputedRows)
	}

	// 3. The fastest schedule that still fits the M4's 128 KB.
	fast, err := vmcu.PlanNetworkWithOptions(net, vmcu.ScheduleOptions{
		Objective:   vmcu.ObjectiveMinLatency,
		BudgetBytes: m4.RAMBytes(),
		CostProfile: m4,
	})
	if err != nil {
		log.Fatal(err)
	}
	estFast, err := vmcu.EstimateCost(m4, net, fast)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmin-latency under %d KB: %.1f KB peak, est. %.1f ms (%.1f%% faster than min-peak)\n",
		m4.RAMBytes()/1024, vmcu.KB(fast.PeakBytes), 1e3*estFast.LatencySeconds,
		100*(1-estFast.LatencySeconds/est.LatencySeconds))
	if estFast.LatencySeconds > est.LatencySeconds {
		log.Fatalf("min-latency schedule slower than min-peak (%.1f > %.1f ms)",
			1e3*estFast.LatencySeconds, 1e3*est.LatencySeconds)
	}

	// 4. Serving with the frontier registered: a roomy device upgrades the
	// request to the fastest fitting variant; the metrics account it.
	srv, err := vmcu.NewServer(vmcu.ServeOptions{
		Devices: []vmcu.ServeDevice{{Name: "m7", Profile: vmcu.CortexM7()}},
		Mode:    vmcu.ExecDryRun,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Register("imagenet", net, vmcu.ServeModelConfig{Pareto: true}); err != nil {
		log.Fatal(err)
	}
	tk, err := srv.Submit("imagenet", vmcu.SubmitOptions{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := tk.Result()
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
	m := srv.Metrics()
	fmt.Printf("\nserved with variant %q: %.1f KB reserved, est. %v on-device (%d upgrade)\n",
		res.Variant, vmcu.KB(res.PeakBytes), res.EstimatedLatency, m.VariantUpgrades)
	if m.VariantUpgrades != 1 {
		log.Fatalf("expected the roomy device to upgrade the variant, got %d", m.VariantUpgrades)
	}
}
