package main

import "testing"

// TestMainRuns is the smoke wrapper CI relies on: the example must run
// to completion (a failure path calls log.Fatal, which fails the test
// binary), so the Pareto walkthrough cannot rot silently.
func TestMainRuns(t *testing.T) { main() }
