// Whole-backbone run: execute all eight inverted-bottleneck modules of
// MCUNet-5fps-VWW (paper Table 2) with the fused §5.2 kernel on a
// simulated STM32-F411RE, verifying every module bit-exactly and
// reporting the per-module RAM and latency that Figures 9 and Table 3
// are built from.
//
//	go run ./examples/mcunet_vww
package main

import (
	"fmt"
	"log"

	"github.com/vmcu-project/vmcu"
)

func main() {
	net := vmcu.VWW()
	m4 := vmcu.CortexM4()
	fmt.Printf("%s on %s\n\n", net.Name, m4.Name)
	fmt.Printf("%-6s %10s %10s %10s %9s %9s %s\n",
		"module", "plan KB", "peak KB", "MACs", "ms", "img/s", "verified")

	var totalMS float64
	bottleneck := 0
	bottleneckName := ""
	for i, cfg := range net.Modules {
		res, err := vmcu.RunModule(m4, cfg, int64(100+i))
		if err != nil {
			log.Fatal(err)
		}
		if !res.OutputOK || res.Violations != 0 {
			log.Fatalf("%s: verification failed (ok=%v violations=%d)",
				cfg.Name, res.OutputOK, res.Violations)
		}
		ms := res.Stats.LatencySeconds(m4) * 1e3
		totalMS += ms
		if res.Plan.FootprintBytes > bottleneck {
			bottleneck = res.Plan.FootprintBytes
			bottleneckName = cfg.Name
		}
		fmt.Printf("%-6s %10.1f %10.1f %10d %9.1f %9.1f %v\n",
			cfg.Name, vmcu.KB(res.Plan.FootprintBytes), vmcu.KB(res.PeakBytes),
			res.Stats.MACs, ms, 1000/ms, res.OutputOK)
	}
	fmt.Printf("\nnetwork memory bottleneck: %.1f KB (%s) — fits the 128 KB F411RE\n",
		vmcu.KB(bottleneck), bottleneckName)
	fmt.Printf("backbone latency (sum of modules): %.0f ms\n", totalMS)
}
