// Single-layer deployment study (the paper's Figure 7 headline case):
// a 80x80x16 -> 80x80x16 pointwise convolution needs 204.8 KB under
// tensor-level management — it cannot be deployed on a 128 KB
// STM32-F411RE. vMCU's segment overlap fits it in 102.4 KB and this
// example actually runs it on the simulated board.
//
//	go run ./examples/single_layer
package main

import (
	"fmt"
	"log"

	"github.com/vmcu-project/vmcu"
)

func main() {
	const h, c, k = 80, 16, 16
	const limitKB = 128.0

	p := vmcu.PlanPointwise(h, h, c, k)
	tiny := p.InBytes + p.OutBytes

	fmt.Printf("layer: pointwise conv %dx%d, C=%d -> K=%d (int8)\n\n", h, h, c, k)
	fmt.Printf("TinyEngine (tensor-level): %6.1f KB  -> ", vmcu.KB(tiny))
	if vmcu.KB(tiny) > limitKB {
		fmt.Println("OUT OF MEMORY on the 128 KB F411RE")
	} else {
		fmt.Println("fits")
	}
	fmt.Printf("vMCU (segment-level)     : %6.1f KB  -> ", vmcu.KB(p.FootprintBytes))
	if vmcu.KB(p.FootprintBytes) > limitKB {
		fmt.Println("OUT OF MEMORY")
	} else {
		fmt.Println("fits the 128 KB F411RE")
	}

	fmt.Println("\nrunning the full layer on the simulated 128 KB device...")
	res, err := vmcu.RunPointwise(vmcu.CortexM4(), h, c, k, 7)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Verified || res.Violations != 0 {
		log.Fatalf("verification failed: verified=%v violations=%d", res.Verified, res.Violations)
	}
	m4 := vmcu.CortexM4()
	fmt.Printf("done: %d MACs, %.1f ms, %.2f mJ — output bit-exact, zero memory violations\n",
		res.Stats.MACs, res.Stats.LatencySeconds(m4)*1e3, res.Stats.EnergyJoules(m4)*1e3)
	fmt.Println("\nthe same layer with one fewer empty segment would silently corrupt")
	fmt.Println("its own input; the simulator's shadow memory proves this plan is tight.")

	// Occupancy timeline (downscaled 16x16 variant for a quick trace):
	// the input drains while the output refills the freed segments, so
	// live bytes stay pinned near the single-tensor plateau throughout.
	trace, err := vmcu.MemoryProfile(vmcu.CortexM4(), 16, 16, 16, 7, 60, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nlive pool bytes over kernel progress (16x16 variant):")
	fmt.Print(trace)
}
