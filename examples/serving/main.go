// Serving: run a multi-tenant inference server over a simulated MCU
// fleet. Two models — the MCUNet VWW backbone and a small custom chain —
// are registered with different priorities, the server is flooded with
// concurrent requests, and the metrics snapshot shows byte-exact pool
// co-residency: requests are admitted onto a device only while their
// whole-network plan peaks pack into the device's SRAM pool.
//
//	go run ./examples/serving
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"github.com/vmcu-project/vmcu"
)

// customChain is a small two-module "keyword spotting"-style backbone,
// showing that registered models are not limited to the Table-2 zoo.
func customChain() vmcu.Network {
	return vmcu.Network{
		Name: "kws-micro",
		Modules: []vmcu.Bottleneck{
			{Name: "K1", H: 16, W: 16, Cin: 8, Cmid: 32, Cout: 8,
				R: 3, S: 3, S1: 1, S2: 1, S3: 1},
			{Name: "K2", H: 16, W: 16, Cin: 8, Cmid: 24, Cout: 12,
				R: 3, S: 3, S1: 1, S2: 1, S3: 1},
		},
	}
}

func main() {
	// A heterogeneous fleet: one 128 KB Cortex-M4 and one 512 KB
	// Cortex-M7, each with its own pool ledger.
	s, err := vmcu.NewServer(vmcu.ServeOptions{
		Devices: []vmcu.ServeDevice{
			{Name: "m4", Profile: vmcu.CortexM4(), Slots: 4},
			{Name: "m7", Profile: vmcu.CortexM7(), Slots: 8},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	// VWW is the latency-critical tenant: higher priority. The custom
	// chain tolerates queueing but sheds if not admitted in time — a
	// normal serving outcome the flood below tolerates and counts.
	if err := s.Register("vww", vmcu.VWW(), vmcu.ServeModelConfig{Priority: 10}); err != nil {
		log.Fatal(err)
	}
	if err := s.Register("kws", customChain(), vmcu.ServeModelConfig{MaxQueueWait: 30 * time.Second}); err != nil {
		log.Fatal(err)
	}

	// Flood the fleet: every submission returns a ticket immediately; the
	// dispatcher admits each request as soon as its plan peak fits a pool.
	const total = 24
	tickets := make([]*vmcu.Ticket, 0, total)
	for i := 0; i < total; i++ {
		model := "kws"
		if i%4 == 0 {
			model = "vww"
		}
		tk, err := s.Submit(model, vmcu.SubmitOptions{Seed: int64(i)})
		if err != nil {
			log.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	var shed int
	for _, tk := range tickets {
		res, err := tk.Result()
		if errors.Is(err, vmcu.ErrServeDeadline) {
			shed++ // an explicit rejection, not a failure — nothing is lost
			continue
		}
		if err != nil {
			log.Fatalf("request %d (%s): %v", tk.ID(), tk.Model(), err)
		}
		if res.Run == nil || !res.Run.AllVerified {
			log.Fatalf("request %d (%s) on %s: verification failed", tk.ID(), tk.Model(), res.Device)
		}
	}
	if err := s.Close(); err != nil {
		log.Fatal(err)
	}

	m := s.Metrics()
	fmt.Println("serving snapshot after the flood:")
	fmt.Printf("  requests              : %d submitted, %d completed, %d deadline-shed, %d failed\n",
		m.Submitted, m.Completed, shed, m.Failed)
	fmt.Printf("  throughput            : %.1f req/s\n", m.ThroughputRPS)
	fmt.Printf("  sojourn latency       : p50 %v  p95 %v  p99 %v\n",
		m.LatencyP50.Round(time.Millisecond), m.LatencyP95.Round(time.Millisecond),
		m.LatencyP99.Round(time.Millisecond))
	fmt.Printf("  queue                 : high water %d of cap %d\n", m.QueueHighWater, m.QueueCap)
	fmt.Printf("  plan cache            : %d hits, %d misses, %d evictions\n",
		m.Cache.Hits, m.Cache.Misses, m.Cache.Evictions)
	for _, d := range m.Devices {
		fmt.Printf("  device %-4s           : pool %5.1f KB, peak co-residency %4.1f%%, %d requests served\n",
			d.Name, vmcu.KB(d.CapacityBytes), 100*d.PeakUtilization, d.Completed)
	}
}
