// Package vmcu is the public API of the vMCU reproduction: coordinated
// segment-level memory management and kernel execution for DNN inference
// on microcontrollers (Zheng et al., MLSys 2024), on a simulated
// Cortex-M substrate.
//
// The package exposes three layers:
//
//  1. Planning — solve the paper's Eq. (1)/(2) offset problem for a layer
//     or fused inverted-bottleneck module and obtain its peak RAM:
//     PlanPointwise, PlanFC, PlanConv2D, PlanDepthwise, PlanModule.
//  2. Execution — run the segment-aware kernels on a simulated
//     STM32-F411RE (Cortex-M4) or STM32-F767ZI (Cortex-M7), with
//     bit-exact verification against golden references and shadow-state
//     memory-safety checking: RunPointwise, RunModule, networks VWW and
//     ImageNet.
//  3. Compilation — build kernels through the loop-nest IR and lower them
//     to ARM-intrinsic C: GenerateFCKernelC.
//
// Above the single-module layer sits the whole-network scheduler
// (internal/netplan): PlanNetwork places every module of a backbone into
// one circular pool with lifetime-aware cross-module offsets, a
// per-module policy search, and a spatial patch-split search over the
// high-resolution leading modules (MCUNetV2-style patch-by-patch
// execution, PolicySplit) that breaks the per-module footprint bound.
// Non-connectable module boundaries schedule as streamed seam kernels
// (HandoffStream) wherever the elided glue op is a strided pointwise, so
// no boundary needs both activations disjoint unless its shape demands
// it. RunNetwork verifies the scheduled network — modules, split region,
// and seams — on a concurrent executor, memoizing solved plans in a
// process-wide cache.
//
// Above the scheduler sits the serving layer (internal/serve): NewServer
// runs many concurrent inference requests for multiple registered models
// across a simulated MCU fleet, admitting a request onto a device only
// when its plan's peak fits the device pool's remaining bytes — the
// planner's exact accounting reused as a multi-tenant admission currency.
//
// See README.md for a quickstart and DESIGN.md for the system inventory.
package vmcu

import (
	"io"

	"github.com/vmcu-project/vmcu/internal/codegen"
	"github.com/vmcu-project/vmcu/internal/cost"
	"github.com/vmcu-project/vmcu/internal/eval"
	"github.com/vmcu-project/vmcu/internal/graph"
	"github.com/vmcu-project/vmcu/internal/ir"
	"github.com/vmcu-project/vmcu/internal/mcu"
	"github.com/vmcu-project/vmcu/internal/netplan"
	"github.com/vmcu-project/vmcu/internal/obs"
	"github.com/vmcu-project/vmcu/internal/ops"
	"github.com/vmcu-project/vmcu/internal/plan"
	"github.com/vmcu-project/vmcu/internal/serve"
	"github.com/vmcu-project/vmcu/internal/tensor"
)

// Profile describes a simulated MCU (clock, cycle costs, energy model).
type Profile = mcu.Profile

// CortexM4 is the STM32-F411RE profile (128 KB RAM, 100 MHz).
func CortexM4() Profile { return mcu.CortexM4() }

// CortexM7 is the STM32-F767ZI profile (512 KB RAM, 216 MHz).
func CortexM7() Profile { return mcu.CortexM7() }

// Stats are operation counts with cycle/latency/energy evaluation.
type Stats = mcu.Stats

// Plan is a solved segment-level memory plan (§4): segment size, the
// bIn−bOut pointer gap, workspace, and the resulting peak footprint.
type Plan = plan.Plan

// Bottleneck describes an inverted-bottleneck module (Table 2 row).
type Bottleneck = plan.Bottleneck

// Conv2DSpec describes a dense 2-D convolution layer.
type Conv2DSpec = plan.Conv2DSpec

// PlanFC plans a fully connected layer In[M,K]·W[K,N] → Out[M,N].
func PlanFC(m, k, n int) Plan { return plan.FC(m, k, n) }

// PlanPointwise plans a 1×1 convolution over an H×W×C image with K
// output channels.
func PlanPointwise(h, w, c, k int) Plan { return plan.Pointwise(h, w, c, k) }

// PlanConv2D plans a general 2-D convolution.
func PlanConv2D(spec Conv2DSpec) Plan { return plan.Conv2D(spec) }

// PlanDepthwise plans a depthwise convolution (near in-place).
func PlanDepthwise(h, w, c, r, s, stride, pad int) Plan {
	return plan.Depthwise(h, w, c, r, s, stride, pad)
}

// PlanModule plans a fused inverted-bottleneck module (§5.2).
func PlanModule(b Bottleneck) Plan { return plan.PlanBottleneckModule(b) }

// Network is a stack of inverted-bottleneck modules.
type Network = graph.Network

// ModuleReport compares vMCU/TinyEngine/HMCOS peak RAM for one module.
type ModuleReport = graph.ModuleReport

// ExecResult reports an executed module: stats, peak RAM, verification.
type ExecResult = graph.ExecResult

// VWW returns the MCUNet-5fps-VWW backbone (Table 2, S1–S8).
func VWW() Network { return graph.VWW() }

// ImageNet returns the MCUNet-320KB-ImageNet backbone (Table 2, B1–B17).
func ImageNet() Network { return graph.ImageNet() }

// RunModule plans and executes one module on a simulated device with
// deterministic random weights, verifying the fused kernel bit-exactly
// against the golden layer composition.
func RunModule(profile Profile, cfg Bottleneck, seed int64) (ExecResult, error) {
	return graph.RunModule(profile, cfg, seed)
}

// LayerResult reports an executed single layer.
type LayerResult struct {
	Plan       Plan
	Stats      Stats
	Verified   bool
	Violations int
}

// RunPointwise executes a 1×1 convolution with the segment-aware kernel
// on the simulated profile, returning measured stats and verification.
func RunPointwise(profile Profile, h, c, k int, seed int64) (LayerResult, error) {
	st, ok, nViol, err := eval.RunVMCUPointwise(profile,
		eval.PointwiseCase{Name: "user", HW: h, C: c, K: k}, seed)
	if err != nil {
		return LayerResult{}, err
	}
	return LayerResult{
		Plan:       plan.Pointwise(h, h, c, k),
		Stats:      st,
		Verified:   ok,
		Violations: nViol,
	}, nil
}

// GenerateFCKernelC builds the paper's Figure-4 fully connected kernel in
// the loop-nest IR and lowers it to ARM-intrinsic C. scale is the
// combined requantization scale; poolCapBytes sizes the circular pool in
// the generated wrap macro.
func GenerateFCKernelC(m, k, n int, scale float64, poolCapBytes int) string {
	p := plan.FC(m, k, n)
	prog := ir.BuildFC(m, k, n, p.SegBytes, tensor.NewRequant(scale, 0))
	return codegen.EmitC(prog, codegen.Options{PoolCapBytes: poolCapBytes})
}

// KB converts bytes to the paper's 10^3-byte kilobytes.
func KB(bytes int) float64 { return eval.KB(bytes) }

// ChainPlan is the solved placement of a linear layer chain in one
// circular pool (Eq. 2 difference constraints).
type ChainPlan = plan.ChainPlan

// PlanChain places a linear sequence of per-layer plans in one circular
// pool: each layer's output becomes the next layer's input with the
// paper's solved pointer gaps, so no inter-layer copies are needed.
func PlanChain(stages []Plan) (ChainPlan, error) { return plan.PlanChain(stages) }

// RunModuleUnfused executes a non-residual stride-1 module as a
// per-layer chain instead of the fused kernel — the fusion ablation.
func RunModuleUnfused(profile Profile, cfg Bottleneck, seed int64) (ExecResult, error) {
	return graph.RunModuleUnfused(profile, cfg, seed)
}

// NetworkPlan is a whole-network, lifetime-aware placement: every module
// of a backbone scheduled into one circular pool, with per-activation live
// ranges, solved cross-module offsets, and a per-module policy choice.
type NetworkPlan = netplan.NetworkPlan

// NetworkRunResult reports a whole-network execution: the memoized plan
// plus one verified per-module result, in network order.
type NetworkRunResult = netplan.RunResult

// SchedulePolicy selects how one module is scheduled within the network
// pool: the fused kernel, a per-layer unfused chain, the disjoint
// baseline fallback, or membership in a spatial patch-split region.
type SchedulePolicy = netplan.Policy

// The scheduling policies the whole-network planner searches over.
const (
	PolicyFused    = netplan.PolicyFused
	PolicyUnfused  = netplan.PolicyUnfused
	PolicyBaseline = netplan.PolicyBaseline
	PolicySplit    = netplan.PolicySplit
)

// ScheduleOptions configure the whole-network scheduler: device budget,
// forced per-module policies, the spatial patch-split search, and the
// handoff mode for non-connectable module boundaries.
type ScheduleOptions = netplan.Options

// HandoffMode selects how non-connectable module boundaries are modeled:
// streamed seam kernels with a solved Eq. (1) gap wherever the elided
// glue op is expressible as a strided pointwise (HandoffStream, the
// default), or a fully disjoint glue placement everywhere
// (HandoffDisjoint).
type HandoffMode = netplan.HandoffMode

// The handoff modes the whole-network scheduler supports.
const (
	HandoffStream   = netplan.HandoffStream
	HandoffDisjoint = netplan.HandoffDisjoint
)

// SeamSchedule describes one streamed handoff of a network plan: the
// elided inter-module glue op scheduled as a segment-aware seam kernel.
// NetworkPlan.Seams lists them; RunNetwork verifies each bit-exactly.
type SeamSchedule = netplan.SeamSchedule

// SeamSpec describes an inter-module glue op as a strided pointwise
// convolution; PlanSeam solves its Eq. (1) memory plan.
type SeamSpec = plan.SeamSpec

// PlanSeam solves the segment-level memory plan of a streamed seam
// (strided pointwise glue op): gcd segment size, the affine closed-form
// pointer gap, and the resulting peak footprint.
func PlanSeam(s SeamSpec) Plan { return plan.PlanSeam(s) }

// RunSeam executes one streamed seam kernel on a simulated device with
// deterministic random weights, verifying it bit-exactly against the
// golden strided pointwise under the given plan.
func RunSeam(profile Profile, spec SeamSpec, p Plan, seed int64) (ExecResult, error) {
	return graph.RunSeam(profile, spec, p, seed)
}

// SplitOptions configure (or pin) the spatial patch-split dimension of
// the schedule search.
type SplitOptions = netplan.SplitOptions

// SplitSchedule describes an adopted patch-split region: the first Depth
// modules executed patch-by-patch with Patches spatial patches. It is
// exposed on NetworkPlan.Split when the search (or a pinned option)
// adopts a split.
type SplitSchedule = netplan.SplitSchedule

// PlanNetwork schedules the entire network into one circular pool under
// the profile's RAM budget: cross-module live ranges, Eq. (2) difference
// constraints over the whole module graph, a per-module policy search,
// and a spatial patch-split search over the leading modules (adopted only
// when it lowers the peak strictly below the best non-split schedule;
// see NetworkPlan.Split and NetworkPlan.NoSplitPeakBytes). Solved plans
// are memoized in a process-wide concurrency-safe cache, so repeated
// calls return the identical plan without re-solving.
func PlanNetwork(profile Profile, net Network) (*NetworkPlan, error) {
	np, _, err := netplan.Default.Plan(net, netplan.Options{BudgetBytes: profile.RAMBytes()})
	return np, err
}

// PlanNetworkWithOptions schedules the network under explicit scheduler
// options — forced per-module policies, a pinned or disabled patch split,
// and a custom budget — through the same process-wide plan cache.
func PlanNetworkWithOptions(net Network, opts ScheduleOptions) (*NetworkPlan, error) {
	np, _, err := netplan.Default.Plan(net, opts)
	return np, err
}

// RunNetwork plans the network (through the plan cache) and executes every
// module's bit-exact verification under its scheduled policy, running
// independent module verifications concurrently on a worker pool.
func RunNetwork(profile Profile, net Network, seed int64) (*NetworkRunResult, error) {
	return netplan.Run(profile, net, seed,
		netplan.Options{BudgetBytes: profile.RAMBytes()}, netplan.Default)
}

// CostEstimate is the analytic per-plan cost prediction: per-unit operation
// counts priced under a profile's cycle/energy model, split into the
// executed portion (validated bit-exactly against device counters) and the
// modeled glue of disjoint handoffs.
type CostEstimate = cost.Estimate

// CostUnit is one priced execution unit of a CostEstimate.
type CostUnit = cost.Unit

// EstimateCost predicts a solved network plan's latency and energy under a
// profile without executing it: the analytic cost model replays each
// scheduled unit's loop structure (fused/unfused/baseline kernels, the
// patch-split region with its halo recompute, streamed seams, disjoint
// handoff glue) and prices the operation counts through the profile. The
// executed portion is within ±10% of the real device counters (bit-exact
// today; the tolerance is the stated contract).
func EstimateCost(profile Profile, net Network, np *NetworkPlan) (*CostEstimate, error) {
	return netplan.EstimatePlan(profile, net, np)
}

// ScheduleObjective selects what PlanNetworkWithOptions minimizes: the
// network peak (ObjectiveMinPeak, the default) or the estimated execution
// cycles under the byte budget (ObjectiveMinLatency).
type ScheduleObjective = netplan.Objective

// The schedule objectives.
const (
	ObjectiveMinPeak    = netplan.MinPeak
	ObjectiveMinLatency = netplan.MinLatency
)

// PlanVariant is one point of a network's Pareto frontier: a solved
// schedule, the pinned options that re-derive it, and its cost estimate.
type PlanVariant = netplan.Variant

// PlanNetworkPareto enumerates the network's schedule space along the
// planner's cost-bearing dimensions (the spatial patch split's
// memory↔recompute axis and latency-driven per-module policy flips) and
// returns the non-dominated (peak bytes, est. cycles, est. energy) plan
// set, sorted by ascending peak: the first variant is memory-optimal, the
// last latency-optimal. The serving layer registers this frontier so
// admission can trade spare SRAM for speed per request.
func PlanNetworkPareto(profile Profile, net Network, opts ScheduleOptions) ([]PlanVariant, error) {
	return netplan.Pareto(profile, net, opts)
}

// Server is the multi-tenant inference serving subsystem: many concurrent
// requests for multiple registered models across a simulated fleet of MCU
// devices, each with a fixed SRAM pool. Admission is byte-exact — a
// request lands on a device only when its cached NetworkPlan peak fits
// the pool's remaining bytes, so co-resident models pack into one pool
// and over-commit is impossible by construction. Devices sharing a
// Profile form an admission shard with its own queue and lock; the fleet
// is mutable while serving (Server.AddDevice, Server.RemoveDevice, and
// the crash simulation Server.CrashDevice — displaced requests fail over
// to surviving devices or resolve with ErrServeDeviceLost), and a shard
// whose queue crosses ServeOptions.DegradeDepth degrades to
// smallest-peak admission instead of shedding. See internal/serve for
// the ledger/queue/shard design and DESIGN.md §5d/§5h.
type Server = serve.Server

// ServeOptions configure a Server: the device fleet, the per-shard
// admission queue bound, the degraded-mode threshold, the plan-cache
// bound, and the execution mode.
type ServeOptions = serve.Options

// ServeDevice describes one simulated fleet device: its MCU profile, its
// SRAM pool, and its concurrent-run slot cap.
type ServeDevice = serve.DeviceConfig

// ServeModelConfig carries a registered model's serving defaults: its
// admission priority and its maximum queue wait (deadline).
type ServeModelConfig = serve.ModelConfig

// SubmitOptions parameterize one inference request: priority, absolute
// admission deadline, and the deterministic verification seed.
type SubmitOptions = serve.SubmitOptions

// Ticket is the asynchronous handle on a submitted request: its state,
// its done channel, its result, and cancellation.
type Ticket = serve.Ticket

// ServeResult reports one finished request: the admitting device, the
// reserved peak, the verified run, and queue/sojourn timings.
type ServeResult = serve.Result

// RequestState is one stage of the request lifecycle
// (submit → planned → queued → admitted → running → done, with rejected,
// canceled, and device-lost as the terminal failure exits).
type RequestState = serve.State

// ServeMetrics is the server snapshot: throughput, latency percentiles,
// queue depth, per-device pool utilization, rejection counts, and plan
// cache stats.
type ServeMetrics = serve.Metrics

// ServeDeviceMetrics is one fleet device's snapshot within ServeMetrics.
type ServeDeviceMetrics = serve.DeviceMetrics

// ServeShardMetrics is one device group's snapshot within ServeMetrics:
// its queue state, degraded-mode counters, and churn counters.
type ServeShardMetrics = serve.ShardMetrics

// ServeExecMode selects what admitted requests execute: the full
// bit-exact verification run, or admission-only dry runs for load tests.
type ServeExecMode = serve.ExecMode

// The serving execution modes.
const (
	ExecVerify = serve.ExecVerify
	ExecDryRun = serve.ExecDryRun
)

// The serving layer's explicit rejection reasons.
var (
	ErrServeQueueFull    = serve.ErrQueueFull
	ErrServeDeadline     = serve.ErrDeadline
	ErrServeTooLarge     = serve.ErrTooLarge
	ErrServeCanceled     = serve.ErrCanceled
	ErrServeClosed       = serve.ErrClosed
	ErrServeUnknownModel = serve.ErrUnknownModel
	// ErrServeDeviceLost resolves a request whose device crashed
	// mid-request with no surviving device able to absorb the failover,
	// and rejects submissions once churn has emptied the fleet.
	ErrServeDeviceLost = serve.ErrDeviceLost
)

// NewServer builds a serving fleet and starts its per-device dispatchers.
// Register models with Server.Register, submit with Server.Submit, and
// inspect Server.Metrics; Close drains gracefully (every accepted request
// still resolves).
func NewServer(opts ServeOptions) (*Server, error) { return serve.NewServer(opts) }

// NewPlanCache returns a netplan plan cache bounded to capEntries plans
// (LRU eviction; capEntries <= 0 means unbounded), for callers that want
// to share one cache between PlanNetworkWithOptions-style planning and a
// serving fleet via ServeOptions.Cache.
func NewPlanCache(capEntries int) *netplan.Cache { return netplan.NewCacheWithCap(capEntries) }

// MemoryProfile executes a pointwise layer with occupancy tracing and
// renders an ASCII timeline of live pool bytes — the input draining while
// the output refills the freed segments, as in the paper's Figure 1.
func MemoryProfile(profile Profile, h, c, k int, seed int64, width, height int) (string, error) {
	return eval.PointwiseMemoryTrace(profile,
		eval.PointwiseCase{Name: "trace", HW: h, C: c, K: k}, seed, width, height)
}

// Tracer is the opt-in observability spine (internal/obs): bounded
// ring-buffer span storage over two clocks (host wall time and simulated
// device cycles) plus counters, gauges, and histograms. A nil *Tracer is
// a valid no-op — every recording method returns immediately — so
// instrumented paths cost nothing when tracing is off. Attach one via
// ServeOptions.Tracer or ScheduleOptions.Tracer, snapshot it with
// Tracer.Snapshot, and export with WriteChromeTrace / WritePrometheus.
// See DESIGN.md §5f.
type Tracer = obs.Tracer

// TracerOptions configure NewTracer (span ring-buffer capacity).
type TracerOptions = obs.Options

// TraceSnapshot is a consistent copy of a tracer's recorded state: spans
// (oldest first), drop accounting, occupancy series, and metric values.
type TraceSnapshot = obs.Snapshot

// SpanData is one recorded span: identity (span/parent/trace IDs), name,
// kind, device, wall-clock and simulated-cycle windows, and attributes.
type SpanData = obs.SpanData

// NewTracer builds an enabled tracer. The zero TracerOptions give the
// default span capacity (obs.DefaultSpanCapacity).
func NewTracer(opts TracerOptions) *Tracer { return obs.New(opts) }

// WriteChromeTrace exports a snapshot as Chrome trace_event JSON — load
// it in chrome://tracing or Perfetto. Wall-clock spans render under
// process 1, the simulated device-cycle timeline under process 2 (cycles
// shown as microseconds), occupancy series as counter tracks.
func WriteChromeTrace(w io.Writer, snap *TraceSnapshot) error {
	return obs.WriteChromeTrace(w, snap)
}

// WritePrometheus exports a snapshot's counters, gauges, and histograms
// in the Prometheus text exposition format.
func WritePrometheus(w io.Writer, snap *TraceSnapshot) error {
	return obs.WritePrometheus(w, snap)
}

// WindowOptions opt a labeled gauge or histogram family into windowed
// aggregation: a ring of rotating sub-windows behind each series serving
// live trailing-window quantiles (p50/p90/p99), rates, and maxima. The
// zero value disables windowing; obs.DefaultSubWindows ×
// obs.DefaultWindowWidth (10 × 1s) is the conventional live view.
type WindowOptions = obs.WindowOptions

// FlightOptions configure the tracer's tail-sampled flight recorder
// (budgets for retained traces, spans per tree, and pending buffers);
// the zero value uses the obs.DefaultFlight* budgets. Enable with
// Tracer.EnableFlight; requests whose terminal outcome is interesting
// (errors, sheds, deadline misses, degraded admissions, device loss,
// live-p99 outliers) retain their whole span tree, everything else is
// discarded at completion.
type FlightOptions = obs.FlightOptions

// FlightSnapshot is a consistent copy of the flight recorder's retained
// traces and traffic stats, from Tracer.FlightSnapshot.
type FlightSnapshot = obs.FlightSnapshot

// SamplerOptions configure the tracer's admission-time head sampler
// (Tracer.EnableSampling): a fixed keep probability (Rate), or an
// adaptive mode steering the rate toward a target sampled
// requests-per-second (TargetRPS), plus the always-keep outcome classes
// that retain a flight exemplar even for head-unsampled requests.
// Without EnableSampling every request is traced, the pre-sampling
// behaviour.
type SamplerOptions = obs.SamplerOptions

// SamplerStats is the head sampler's live state (Tracer.SamplerStats,
// served by the ops plane at /debug/sampling): current rate, lifetime
// and trailing-window decision counts, and per-class keep counts.
type SamplerStats = obs.SamplerStats

// MetricFamily is one labeled metric family in a TraceSnapshot
// (TraceSnapshot.Families): name, help, kind, label keys, and the
// per-labelset series with their windowed views.
type MetricFamily = obs.FamilyData

// WriteFlightChrome exports a flight snapshot as Chrome trace JSON; each
// retained root span carries its retention reason as a "flight_reason"
// attribute.
func WriteFlightChrome(w io.Writer, fs *FlightSnapshot) error {
	return obs.WriteFlightChrome(w, fs)
}

// OpsHandler serves the live operations plane over HTTP: GET /metrics
// (Prometheus text), /healthz and /readyz (invariant and load checks),
// /debug/status (ServeMetrics JSON), and /debug/flight (retained flight
// traces as Chrome trace JSON). Mount Mux() on any net/http server. See
// DESIGN.md §5i.
type OpsHandler = ops.Handler

// NewOpsHandler builds the ops plane over a serving server and tracer
// (either may be nil: missing pieces serve degenerate 200s).
func NewOpsHandler(s *Server, tr *Tracer) *OpsHandler {
	// A nil *Server must become a nil interface, not a typed nil.
	if s == nil {
		return ops.NewHandler(nil, tr)
	}
	return ops.NewHandler(s, tr)
}

// RunNetworkTraced is RunNetwork with per-unit observability: every
// executed unit is recorded on tr as a KindUnit span carrying the unit's
// device counters, with the simulated cycle axis laid out cumulatively in
// network order. parentID and traceID link the unit spans under an
// existing span tree (0 for standalone roots); device names the simulated
// device in the exported timeline.
func RunNetworkTraced(profile Profile, net Network, seed int64, tr *Tracer,
	parentID, traceID uint64, device string) (*NetworkRunResult, error) {
	return netplan.RunTraced(profile, net, seed,
		netplan.Options{BudgetBytes: profile.RAMBytes()}, netplan.Default,
		tr, parentID, traceID, device)
}
